"""Distributed exploration worker node (the ``repro worker`` body).

A worker node is one process holding a **partition of the visited set**
for a distributed compact run (see
:mod:`repro.checker.distributed`): the coordinator assigns it fingerprint
ranges, ships it the spec once, and then drives it level by level.  In
full-state mode the worker is a stateless expander instead -- the
coordinator keeps the graph, workers only enumerate successors of
portable state rows.

Routes (JSON in; JSON out except ``/expand``, which streams NDJSON)::

    GET  /healthz   liveness probe: pid, engine, partition size.  The
                    coordinator's heartbeat monitor polls this.
    POST /load      (re)initialise for a run: spec pickle (b64), engine
                    ("compact"/"full"), worker index, owned fingerprint
                    ranges, optional fault-hook pickle.  Idempotent:
                    loading resets all partition state.
    POST /ranges    replace the owned fingerprint ranges (rebalance
                    after a node loss).
    POST /expand    {"level": L, "sources": [[pos, payload], ...]} ->
                    one NDJSON line {"pos": p, "succ": [...]} per
                    source -- in compact mode with a parallel "fps"
                    list carrying each successor's 64-bit fingerprint,
                    so the coordinator's routing/partition decisions
                    never recompute them -- then a terminator line
                    {"done": n, "busy": secs, "pid": pid}.  Payloads
                    are packed ints (compact) or portable state rows
                    (full).  Pure: expansion never touches the visited
                    partition, so the coordinator may re-send sources
                    after a retry or duplication without skew.
    POST /lookup    compact only: {"values": [packed...]} ->
                    {"nodes": [id...]} positionally aligned with the
                    request, -1 for a value this partition has not
                    seen.  Pure.
    POST /adopt     compact only: {"entries": [[packed, node], ...]}
                    inserts newly interned states into the partition.
                    Idempotent: known packed values are skipped, so a
                    duplicated or retried adopt cannot double-count.
                    Returns the partition's fingerprint-collision total.
    POST /shutdown  graceful exit.

Single-threaded by design: requests are served on the asyncio loop, and
``/expand`` does its successor enumeration *on the loop thread*, yielding
every few dozen sources so ``/healthz`` stays responsive during honest
work.  The fault-injection hook (shipped pickled via ``/load``, the
node-level analogue of the process-pool ``fault_hook`` seam in
:mod:`repro.checker.parallel`) runs on the loop thread *without*
yielding -- so a hook that hangs blocks the health endpoint too, which
is exactly what makes a hung node distinguishable from a busy one to the
coordinator's heartbeat monitor.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import pickle
import signal
import sys
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from ..kernel.action import compile_action
from ..kernel.packed import PackedPlan
from ..kernel.state import State
from .wire import HttpError, read_body, read_head, send_json

__all__ = ["WorkerNode", "run_worker", "write_worker_endpoint"]

# sources expanded between event-loop yields: small enough that /healthz
# answers within any sane heartbeat interval, large enough that the
# yields are noise against successor enumeration
_EXPAND_YIELD_EVERY = 64


class WorkerNode:
    """One listening socket owning one visited-set partition."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port  # 0 = ephemeral; start() fills the real one in
        self._server: Optional[asyncio.AbstractServer] = None
        self.generation = 0
        self._clear_run()

    def _clear_run(self) -> None:
        self.engine: Optional[str] = None
        self.spec = None
        self.worker_index: Optional[int] = None
        self.ranges: List[Tuple[int, int]] = []
        self.expand: Optional[Callable[[object], List[object]]] = None
        self.fault: Optional[Callable] = None
        # compact-mode partition state
        self.visited: Dict[int, int] = {}
        self._fingerprint = None
        self._fp_cache: Dict[int, int] = {}  # fingerprints are pure
        self._fps: set = set()
        self.collisions = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, headers = await read_head(reader)
            body = await read_body(reader, headers)
            await self._route(method, path, body, writer)
        except HttpError as exc:
            await send_json(writer, exc.status, {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass  # coordinator went away mid-request
        except Exception as exc:  # never kill the accept loop
            try:
                await send_json(writer, 500,
                                {"error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await send_json(writer, 200, {
                "ok": True, "pid": os.getpid(), "engine": self.engine,
                "worker": self.worker_index, "generation": self.generation,
                "visited": len(self.visited),
                "collisions": self.collisions})
            return
        if method != "POST":
            raise HttpError(405, f"{method} not allowed on {path}")
        if path == "/load":
            await send_json(writer, 200, self._load(self._json(body)))
            return
        if path == "/ranges":
            await send_json(writer, 200, self._set_ranges(self._json(body)))
            return
        if path == "/expand":
            await self._expand(self._json(body), writer)
            return
        if path == "/lookup":
            await send_json(writer, 200, self._lookup(self._json(body)))
            return
        if path == "/adopt":
            await send_json(writer, 200, self._adopt(self._json(body)))
            return
        if path == "/shutdown":
            await send_json(writer, 200, {"ok": True, "pid": os.getpid()})
            if self._stop_requested is not None:
                self._stop_requested.set()
            return
        raise HttpError(404, f"no route for {method} {path}")

    _stop_requested: Optional[asyncio.Event] = None

    @staticmethod
    def _json(body: bytes) -> Dict:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        return payload

    # -- endpoint bodies ------------------------------------------------------

    def _load(self, payload: Dict) -> Dict:
        try:
            spec = pickle.loads(base64.b64decode(payload["spec_pickle"]))
            engine = payload["engine"]
            worker_index = int(payload["worker"])
            ranges = [(int(lo), int(hi)) for lo, hi in payload["ranges"]]
            fault_pickle = payload.get("fault_pickle")
        except HttpError:
            raise
        except Exception as exc:
            raise HttpError(400, f"malformed load request: {exc}") from None
        fingerprint = None
        if engine == "compact":
            plan = PackedPlan(spec)  # CompactUnsupported -> 500 is a bug:
            # the coordinator probes support before shipping the spec
            expand = plan.successors
            fingerprint = plan.codec.fingerprint
        elif engine == "full":
            successors = compile_action(
                spec.next_action).plan(spec.universe).successors

            def expand(row: object) -> List[object]:
                state = State.from_portable(row)
                return [succ.to_portable() for succ in successors(state)]

        else:
            raise HttpError(400, f"unknown engine {engine!r}")
        self._clear_run()
        self._fingerprint = fingerprint
        self.generation += 1
        self.engine = engine
        self.spec = spec
        self.worker_index = worker_index
        self.ranges = ranges
        self.expand = expand
        if fault_pickle:
            try:
                self.fault = pickle.loads(base64.b64decode(fault_pickle))
            except Exception as exc:
                raise HttpError(
                    400, f"fault hook cannot be unpickled: {exc}") from None
        return {"ok": True, "pid": os.getpid(), "engine": engine,
                "worker": worker_index, "generation": self.generation}

    def _set_ranges(self, payload: Dict) -> Dict:
        self._require_loaded()
        try:
            self.ranges = [(int(lo), int(hi))
                           for lo, hi in payload["ranges"]]
        except Exception as exc:
            raise HttpError(400, f"malformed ranges: {exc}") from None
        return {"ok": True, "visited": len(self.visited)}

    def _require_loaded(self) -> None:
        if self.expand is None:
            raise HttpError(409, "no run loaded; POST /load first")

    async def _expand(self, payload: Dict,
                      writer: asyncio.StreamWriter) -> None:
        self._require_loaded()
        try:
            level = int(payload.get("level", -1))
            sources = payload["sources"]
        except Exception as exc:
            raise HttpError(400, f"malformed expand request: {exc}") from None
        if self.fault is not None:
            # deliberately blocking ON the loop thread: a hook that hangs
            # freezes /healthz too, which is what the chaos tests rely on
            self.fault({"worker": self.worker_index, "level": level,
                        "sources": sources})
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        expand = self.expand
        fingerprint = self._fingerprint
        cache = self._fp_cache
        start = perf_counter()
        for count, (pos, value) in enumerate(sources, start=1):
            succ = expand(value)
            if fingerprint is None:  # full mode: portable rows, no fps
                payload = {"pos": pos, "succ": succ}
            else:
                # fingerprinting here (not on the coordinator) is what
                # makes the cost scale with the worker count
                fps = []
                for v in succ:
                    fp = cache.get(v)
                    if fp is None:
                        fp = fingerprint(v)
                        cache[v] = fp
                    fps.append(fp)
                payload = {"pos": pos, "succ": succ, "fps": fps}
            line = json.dumps(payload, separators=(",", ":"))
            writer.write(line.encode("utf-8") + b"\n")
            if count % _EXPAND_YIELD_EVERY == 0:
                await writer.drain()
                await asyncio.sleep(0)  # keep /healthz responsive
        tail = json.dumps({"done": len(sources),
                           "busy": perf_counter() - start,
                           "pid": os.getpid()}, separators=(",", ":"))
        writer.write(tail.encode("utf-8") + b"\n")
        await writer.drain()

    def _lookup(self, payload: Dict) -> Dict:
        self._require_loaded()
        if self.engine != "compact":
            raise HttpError(409, "/lookup only exists on compact partitions")
        try:
            values = [int(v) for v in payload["values"]]
        except Exception as exc:
            raise HttpError(400, f"malformed lookup request: {exc}") from None
        visited = self.visited
        return {"nodes": [visited.get(value, -1) for value in values]}

    def _adopt(self, payload: Dict) -> Dict:
        self._require_loaded()
        if self.engine != "compact":
            raise HttpError(409, "/adopt only exists on compact partitions")
        try:
            entries = [(int(packed), int(node))
                       for packed, node in payload["entries"]]
        except Exception as exc:
            raise HttpError(400, f"malformed adopt request: {exc}") from None
        visited = self.visited
        fingerprint = self._fingerprint
        cache = self._fp_cache
        adopted = known = 0
        for packed, node in entries:
            if packed in visited:  # idempotence under duplication/retry
                known += 1
                continue
            visited[packed] = node
            adopted += 1
            fp = cache.get(packed)
            if fp is None:
                fp = fingerprint(packed)
                cache[packed] = fp
            if fp in self._fps:
                self.collisions += 1
            else:
                self._fps.add(fp)
        return {"adopted": adopted, "known": known,
                "collisions": self.collisions, "visited": len(visited)}


def write_worker_endpoint(path: str, node: WorkerNode) -> str:
    """Atomically drop an endpoint file so spawners can discover an
    ephemeral port (same shape as the service's ``server.json``)."""
    payload = {"host": node.host, "port": node.port,
               "url": node.url, "pid": os.getpid()}
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
    return path


def run_worker(host: str = "127.0.0.1", port: int = 0,
               endpoint_file: Optional[str] = None, out=None) -> int:
    """The ``repro worker`` body: serve until SIGTERM/SIGINT or a
    ``POST /shutdown``.

    Workers are intentionally stateless across runs -- every run starts
    with a fresh ``/load`` -- so there is nothing to drain: shutdown is
    immediate.  Any in-flight coordinator request surfaces there as a
    connection error, i.e. a node loss, which the coordinator's
    rebalancing machinery already handles.
    """
    out = out if out is not None else sys.stdout

    async def _amain() -> None:
        node = WorkerNode(host=host, port=port)
        await node.start()
        stop = asyncio.Event()
        node._stop_requested = stop
        if endpoint_file:
            write_worker_endpoint(endpoint_file, node)
        print(f"repro worker: listening on {node.url} (pid {os.getpid()})",
              file=out, flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_args: stop.set())
        await stop.wait()
        await node.stop()
        print("repro worker: shut down", file=out, flush=True)

    asyncio.run(_amain())
    return 0
