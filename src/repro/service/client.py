"""Thin blocking HTTP client for the checking service.

Wraps ``http.client`` (stdlib only) for the four verbs the CLI exposes:
``submit``, ``job``/``wait``, ``events`` (NDJSON streaming), and
``cancel``, plus ``health``.  Raises :class:`QueueFullError` (with the
server's retry-after hint) on backpressure and :class:`ServiceError`
for every other non-2xx answer.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Dict, Iterator, List, Optional, Sequence
from urllib.parse import urlparse

__all__ = ["ServiceClient", "ServiceError", "QueueFullError"]

_TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, object]] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class QueueFullError(ServiceError):
    """429: the admission queue is full; retry after ``retry_after``s."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, object]] = None):
        super().__init__(status, message, payload)
        self.retry_after = float((payload or {}).get("retry_after", 1.0))


class ServiceClient:
    """Blocking client bound to one server URL."""

    def __init__(self, url: str = "http://127.0.0.1:8123",
                 timeout: float = 60.0):
        parsed = urlparse(url if "//" in url else "http://" + url)
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8123
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _connect(self, timeout: Optional[float]) -> HTTPConnection:
        return HTTPConnection(self.host, self.port,
                              timeout=self.timeout if timeout is None
                              else timeout)

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
        conn = self._connect(None)
        try:
            encoded = json.dumps(body).encode("utf-8") \
                if body is not None else None
            headers = {"Content-Type": "application/json"} \
                if encoded is not None else {}
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")}
        if response.status == 429:
            raise QueueFullError(response.status,
                                 str(payload.get("error", "queue full")),
                                 payload)
        if response.status >= 400:
            raise ServiceError(response.status,
                               str(payload.get("error", "request failed")),
                               payload)
        return payload

    # -- the verbs -----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def submit(self, module_source: str, spec: str = "Spec",
               invariants: Sequence[str] = (),
               properties: Sequence[str] = (),
               max_states: int = 200_000, por: bool = False,
               compact: bool = False, workers: int = 1,
               checkpoint_every: int = 1,
               level_delay: float = 0.0,
               engine: str = "explicit",
               depth: Optional[int] = None) -> Dict[str, object]:
        """POST /jobs.  Returns ``{"job": {...}, "disposition": ...}``;
        raises :class:`QueueFullError` on backpressure.

        ``engine``/``depth`` select the checking engine (symbolic
        requests bound-check to ``depth``); the defaults are omitted
        from the body so requests stay compatible with servers that
        predate the field.
        """
        body: Dict[str, object] = {
            "module_source": module_source,
            "spec": spec,
            "invariants": list(invariants),
            "properties": list(properties),
            "max_states": max_states,
            "por": por,
            "compact": compact,
            "workers": workers,
            "checkpoint_every": checkpoint_every,
            "level_delay": level_delay,
        }
        if engine != "explicit":
            body["engine"] = engine
        if depth is not None:
            body["depth"] = depth
        return self._request("POST", "/jobs", body=body)

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def list_jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/jobs")["jobs"]  # type: ignore[index]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[Dict[str, object]]:
        """GET /jobs/<id>/events: yield progress events as they stream,
        until the job reaches a terminal state and the server closes the
        connection.  *timeout* bounds each read (None = client default)."""
        conn = self._connect(timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode("utf-8")) if raw else {}
                except ValueError:
                    payload = {}
                raise ServiceError(response.status,
                                   str(payload.get("error", "stream failed")),
                                   payload)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.1) -> Dict[str, object]:
        """Poll until the job is terminal; returns its final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in _TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.get('state')!r} "
                    f"after {timeout:g}s")
            time.sleep(poll)
