"""Thin blocking HTTP client for the checking service.

Wraps ``http.client`` (stdlib only) for the verbs the CLI exposes:
``submit``, ``job``/``wait``, ``events`` (NDJSON streaming), and
``cancel``, plus ``health``, ``metrics``, and ``tenants``.  Raises
:class:`QueueFullError` (with the server's retry-after hint) on
backpressure and :class:`ServiceError` for every other non-2xx answer.

Two production-service conveniences:

* every request carries the client's **tenant** in ``X-Repro-Tenant``
  (defaulting to the server-side default tenant when unset), and
* ``submit`` **retries 429s**, sleeping the larger of the server's
  ``Retry-After`` -- which is derived from this tenant's own token
  bucket, so it is the exact time of the next token -- and a capped
  exponential backoff, plus decorrelating jitter.  ``retries=0``
  restores raw fail-fast behaviour.
"""

from __future__ import annotations

import json
import random
import time
from http.client import HTTPConnection
from typing import Callable, Dict, Iterator, List, Optional, Sequence
from urllib.parse import urlparse

__all__ = ["ServiceClient", "ServiceError", "QueueFullError"]

_TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, object]] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class QueueFullError(ServiceError):
    """429: throttled or full; retry after ``retry_after`` seconds.
    ``tenant``/``reason`` are set when the rejection was this tenant's
    own quota rather than the shared queue limit."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, object]] = None):
        super().__init__(status, message, payload)
        self.retry_after = float((payload or {}).get("retry_after", 1.0))
        self.tenant = (payload or {}).get("tenant")
        self.reason = (payload or {}).get("reason")


class ServiceClient:
    """Blocking client bound to one server URL (and one tenant)."""

    def __init__(self, url: str = "http://127.0.0.1:8123",
                 timeout: float = 60.0, tenant: Optional[str] = None,
                 retries: int = 4, backoff_base: float = 0.1,
                 backoff_cap: float = 5.0,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None):
        parsed = urlparse(url if "//" in url else "http://" + url)
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8123
        self.timeout = timeout
        self.tenant = tenant
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _connect(self, timeout: Optional[float]) -> HTTPConnection:
        return HTTPConnection(self.host, self.port,
                              timeout=self.timeout if timeout is None
                              else timeout)

    def _headers(self, json_body: bool = False) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if json_body:
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
        conn = self._connect(None)
        try:
            encoded = json.dumps(body).encode("utf-8") \
                if body is not None else None
            conn.request(method, path, body=encoded,
                         headers=self._headers(encoded is not None))
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")}
        if response.status == 429:
            raise QueueFullError(response.status,
                                 str(payload.get("error", "queue full")),
                                 payload)
        if response.status >= 400:
            raise ServiceError(response.status,
                               str(payload.get("error", "request failed")),
                               payload)
        return payload

    def _backoff_delay(self, attempt: int, retry_after: float) -> float:
        """The server's hint, floored by capped exponential backoff and
        stretched by decorrelating jitter (so a herd of throttled
        clients does not re-arrive in one wave)."""
        backoff = min(self.backoff_cap,
                      self.backoff_base * (2.0 ** attempt))
        delay = max(retry_after, backoff)
        return delay * (1.0 + 0.25 * self._rng.random())

    # -- the verbs -----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """GET /metrics: the fleet-wide Prometheus text exposition."""
        conn = self._connect(None)
        try:
            conn.request("GET", "/metrics", headers=self._headers())
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        if response.status >= 400:
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                payload = {}
            raise ServiceError(response.status,
                               str(payload.get("error", "metrics failed")),
                               payload)
        return raw.decode("utf-8")

    def tenants(self) -> Dict[str, Dict[str, object]]:
        """GET /tenants: per-tenant scheduler state."""
        return self._request("GET", "/tenants")["tenants"]  # type: ignore[index]

    def submit(self, module_source: str, spec: str = "Spec",
               invariants: Sequence[str] = (),
               properties: Sequence[str] = (),
               max_states: int = 200_000, por: bool = False,
               compact: bool = False, workers: int = 1,
               checkpoint_every: int = 1,
               level_delay: float = 0.0,
               engine: str = "explicit",
               depth: Optional[int] = None,
               retries: Optional[int] = None) -> Dict[str, object]:
        """POST /jobs.  Returns ``{"job": {...}, "disposition": ...}``.

        A 429 (queue full, or this tenant throttled) is retried up to
        *retries* times (default: the client's ``retries``), honouring
        the server's ``Retry-After`` with capped exponential backoff and
        jitter; :class:`QueueFullError` is raised once they are
        exhausted (immediately with ``retries=0``).

        ``engine``/``depth`` select the checking engine (symbolic
        requests bound-check to ``depth``); the defaults are omitted
        from the body so requests stay compatible with servers that
        predate the field.
        """
        body: Dict[str, object] = {
            "module_source": module_source,
            "spec": spec,
            "invariants": list(invariants),
            "properties": list(properties),
            "max_states": max_states,
            "por": por,
            "compact": compact,
            "workers": workers,
            "checkpoint_every": checkpoint_every,
            "level_delay": level_delay,
        }
        if engine != "explicit":
            body["engine"] = engine
        if depth is not None:
            body["depth"] = depth
        budget = self.retries if retries is None else retries
        if budget < 0:
            raise ValueError(f"retries must be >= 0, got {budget}")
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body=body)
            except QueueFullError as exc:
                if attempt >= budget:
                    raise
                self._sleep(self._backoff_delay(attempt, exc.retry_after))
                attempt += 1

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def list_jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/jobs")["jobs"]  # type: ignore[index]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[Dict[str, object]]:
        """GET /jobs/<id>/events: yield progress events as they stream,
        until the job reaches a terminal state and the server closes the
        connection.  *timeout* bounds each read (None = client default)."""
        conn = self._connect(timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events",
                         headers=self._headers())
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode("utf-8")) if raw else {}
                except ValueError:
                    payload = {}
                raise ServiceError(response.status,
                                   str(payload.get("error", "stream failed")),
                                   payload)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.1) -> Dict[str, object]:
        """Poll until the job is terminal; returns its final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in _TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.get('state')!r} "
                    f"after {timeout:g}s")
            time.sleep(poll)
