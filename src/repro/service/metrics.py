"""Process-wide observability for the checking service.

A :class:`MetricsRegistry` holds counters, gauges, and histograms
(optionally labelled, e.g. per tenant) and renders them in the
Prometheus text exposition format for ``GET /metrics``.  Everything is
stdlib: a metric family is a name + kind + label names; a child is one
label-value combination holding a float (counter/gauge) or cumulative
bucket counts + sum (histogram).

The service runs as N pre-forked processes over one state directory,
so one process's registry only sees its own slice of the fleet.  The
multi-process story mirrors Prometheus's multiprocess mode, minus the
mmap: each process owns a :class:`MetricsDir` that flushes its
registry's snapshot to ``<dir>/proc-<pid>-<nonce>.json`` (atomic
write-then-rename) on every job transition, and :meth:`MetricsDir.render`
merges every sibling snapshot with the live local registry before
rendering.  Merge rules:

* **counters and histograms sum** across snapshots -- including those of
  dead processes, because work they admitted/completed still happened
  (that is what lets ``/metrics`` reconcile with the journal across
  restarts: admitted == completed + failed + cancelled + in-flight);
* **gauges sum across live processes only** -- a dead process's queue
  depth is meaningless (its queued jobs were re-claimed by a survivor
  and are already in the survivor's gauge).

Quantiles for human summaries (``repro admin metrics``, the load-test
report) come from :meth:`Histogram.quantile`, a conservative
upper-bound read of the cumulative buckets.
"""

from __future__ import annotations

import fcntl
import json
import math
import os
import tempfile
import threading
import time
import uuid
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .journal import own_start, owner_alive

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsDir",
    "DEFAULT_BUCKETS", "render_snapshot", "merge_snapshots",
]

# submit->finish latencies span ~5 ms cache hits to minutes-long
# explorations; the tail buckets keep 30-60 s runs distinguishable
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Child:
    """One label-value combination of a family."""

    def __init__(self, lock: threading.Lock):
        self._lock = lock


class Counter(_Child):
    """A monotonically increasing float."""

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _data(self) -> float:
        return self._value


class Gauge(_Child):
    """A float that can go either way (queue depth, running jobs)."""

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _data(self) -> float:
        return self._value


class Histogram(_Child):
    """Cumulative fixed-bucket histogram (Prometheus semantics: each
    bucket counts observations <= its upper bound, +Inf counts all)."""

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(lock)
        self.bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation
        (inf when it landed beyond the last finite bucket)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        for i, bound in enumerate(self.bounds):
            if self._counts[i] >= rank:
                return bound
        return math.inf

    def _data(self) -> Dict[str, object]:
        return {
            "buckets": {_format_value(b): self._counts[i]
                        for i, b in enumerate(self.bounds)},
            "inf": self._counts[-1],
            "sum": self._sum,
            "count": self._count,
        }


class _Family:
    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...], lock: threading.Lock,
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, **labels: str) -> _Child:
        if set(labels) != set(self.labelnames):
            raise ValueError(f"{self.name} takes labels "
                             f"{self.labelnames}, got {sorted(labels)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> _Child:
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self.buckets or DEFAULT_BUCKETS)

    @property
    def default(self) -> _Child:
        """The unlabelled child (only for families with no label names)."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled by {self.labelnames}")
        return self.labels()


class MetricsRegistry:
    """All of one process's metric families, by name."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_text: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> _Family:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name} re-registered as {kind}"
                    f"{tuple(labelnames)}; it is {family.kind}"
                    f"{family.labelnames}")
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, tuple(labelnames),
                                 self._lock, buckets)
                self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _Family:
        return self._family(name, "histogram", help_text, labelnames, buckets)

    # -- snapshot / render ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe dump of every family (the unit MetricsDir flushes
        and merge_snapshots sums)."""
        families: Dict[str, object] = {}
        with self._lock:
            for name, family in self._families.items():
                families[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "samples": [[list(key), child._data()]
                                for key, child in
                                sorted(family._children.items())],
                }
        return {"pid": os.getpid(), "pid_start": own_start(),
                "t": time.time(), "families": families}

    def render(self) -> str:
        return render_snapshot(self.snapshot())


def _merge_data(kind: str, into: object, data: object) -> object:
    if kind in ("counter", "gauge"):
        return (into or 0.0) + data
    merged = into or {"buckets": {}, "inf": 0, "sum": 0.0, "count": 0}
    for le, n in data["buckets"].items():
        merged["buckets"][le] = merged["buckets"].get(le, 0) + n
    merged["inf"] += data["inf"]
    merged["sum"] += data["sum"]
    merged["count"] += data["count"]
    return merged


def merge_snapshots(snapshots: Iterable[Dict[str, object]],
                    live_pids: Optional[Iterable[int]] = None
                    ) -> Dict[str, object]:
    """Sum snapshots into one: counters/histograms always, gauges only
    from processes in *live_pids* (None = keep all gauges)."""
    alive = None if live_pids is None else set(live_pids)
    combined: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        pid = snapshot.get("pid")
        for name, family in snapshot.get("families", {}).items():
            kind = family["kind"]
            if kind == "gauge" and alive is not None and pid not in alive:
                continue
            slot = combined.setdefault(name, {
                "kind": kind, "help": family.get("help", ""),
                "labelnames": family.get("labelnames", []), "samples": {}})
            for key, data in family.get("samples", ()):
                tkey = tuple(key)
                slot["samples"][tkey] = _merge_data(
                    kind, slot["samples"].get(tkey), data)
    return {"families": {
        name: {"kind": fam["kind"], "help": fam["help"],
               "labelnames": fam["labelnames"],
               "samples": [[list(k), v] for k, v in
                           sorted(fam["samples"].items())]}
        for name, fam in combined.items()}}


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """The Prometheus text exposition of one (possibly merged) snapshot."""
    lines: List[str] = []
    for name in sorted(snapshot.get("families", {})):
        family = snapshot["families"][name]
        kind, labelnames = family["kind"], list(family["labelnames"])
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for key, data in family.get("samples", ()):
            base = ",".join(f'{ln}="{_escape_label(lv)}"'
                            for ln, lv in zip(labelnames, key))
            if kind in ("counter", "gauge"):
                label_part = "{" + base + "}" if base else ""
                lines.append(f"{name}{label_part} {_format_value(data)}")
                continue
            pairs = sorted(((float(le), n)
                            for le, n in data["buckets"].items()),
                           key=lambda p: p[0])
            for le, n in pairs:  # counts are already cumulative
                le_part = base + ("," if base else "") \
                    + f'le="{_format_value(le)}"'
                lines.append(f"{name}_bucket{{{le_part}}} {n}")
            inf_part = base + ("," if base else "") + 'le="+Inf"'
            lines.append(f"{name}_bucket{{{inf_part}}} {data['inf']}")
            label_part = "{" + base + "}" if base else ""
            lines.append(f"{name}_sum{label_part} "
                         f"{_format_value(data['sum'])}")
            lines.append(f"{name}_count{label_part} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# dead-process snapshot files fold into this single baseline so a
# /metrics scrape re-reads O(live fleet) files, not O(every process
# that ever ran); the name keeps the existing proc-*.json dir filter
_BASELINE_NAME = "proc-dead-merged.json"


def _snapshot_owner_alive(snapshot: Dict[str, object]) -> bool:
    """Liveness of the process that wrote *snapshot*: pid plus, where
    recorded, its start time -- a recycled pid must not resurrect a
    dead sibling's gauges."""
    pid = snapshot.get("pid")
    if not isinstance(pid, int) or pid <= 0:
        return False
    return owner_alive(pid, snapshot.get("pid_start"))


class MetricsDir:
    """One process's window onto the shared metrics directory.

    ``flush()`` persists the local registry (cheap: one small JSON,
    atomic rename); ``aggregate()`` loads every sibling process's last
    flush, swaps this process's file for its *live* registry, and merges
    per the counter/gauge rules above.  Files of dead processes are kept
    (their counters are history that must keep counting) but their
    gauges are dropped.
    """

    def __init__(self, directory: str, registry: MetricsRegistry):
        self.directory = directory
        self.registry = registry
        os.makedirs(directory, exist_ok=True)
        self._nonce = uuid.uuid4().hex[:8]
        self.path = os.path.join(
            directory, f"proc-{os.getpid()}-{self._nonce}.json")
        self._flush_lock = threading.Lock()
        # a previous MetricsDir of this same live process (a restarted
        # in-process manager) would pass the pid-liveness gauge filter
        # and double-count its stale gauges.  Retire such files: null
        # the pid (gauges drop out) but keep the counters -- work the
        # previous manager admitted/completed still happened.
        stale_prefix = f"proc-{os.getpid()}-"
        for name in os.listdir(directory):
            if (not name.startswith(stale_prefix)
                    or not name.endswith(".json")
                    or name == os.path.basename(self.path)):
                continue
            stale_path = os.path.join(directory, name)
            try:
                with open(stale_path) as handle:
                    snapshot = json.load(handle)
                snapshot["pid"] = None
                fd, tmp = tempfile.mkstemp(prefix=".retire-",
                                           suffix=".tmp", dir=directory)
                with os.fdopen(fd, "w") as handle:
                    json.dump(snapshot, handle, separators=(",", ":"))
                os.replace(tmp, os.path.join(
                    directory, "proc-dead-" + name[len(stale_prefix):]))
                os.unlink(stale_path)
            except (OSError, ValueError):
                try:
                    os.unlink(stale_path)
                except OSError:
                    pass
        self.fold_dead()

    def fold_dead(self) -> int:
        """Merge every dead process's snapshot file (retired
        ``proc-dead-*`` files and ``proc-<pid>-*`` files whose owner is
        gone) into the single baseline file, dropping their gauges but
        keeping counters/histograms counting.  This bounds both the
        directory and the per-scrape read cost by the *live* fleet
        rather than by every process that ever served.  Serialised
        against sibling folds by a directory flock; returns the number
        of files folded away."""
        lock_path = os.path.join(self.directory, ".fold.lock")
        try:
            with open(lock_path, "a") as lockf:
                fcntl.flock(lockf.fileno(), fcntl.LOCK_EX)
                try:
                    return self._fold_dead_locked()
                finally:
                    fcntl.flock(lockf.fileno(), fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - folding is an optimisation
            return 0

    def _fold_dead_locked(self) -> int:
        dead_paths: List[str] = []
        snapshots: List[Dict[str, object]] = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return 0
        for name in names:
            if not name.startswith("proc-") or not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            if name == os.path.basename(self.path):
                continue  # our own live slice
            try:
                with open(path) as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError):
                continue  # torn or vanished: leave it for its owner
            if _snapshot_owner_alive(snapshot):
                continue  # a live sibling's slice
            dead_paths.append(path)
            snapshots.append(snapshot)
        if not any(os.path.basename(p) != _BASELINE_NAME
                   for p in dead_paths):
            return 0  # nothing beyond the existing baseline
        merged = merge_snapshots(snapshots, live_pids=())
        merged["pid"] = None
        merged["t"] = time.time()
        fd, tmp = tempfile.mkstemp(prefix=".fold-", suffix=".tmp",
                                   dir=self.directory)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(merged, handle, separators=(",", ":"))
            os.replace(tmp, os.path.join(self.directory, _BASELINE_NAME))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        folded = 0
        for path in dead_paths:
            if os.path.basename(path) == _BASELINE_NAME:
                continue  # just rewritten with the merge folded in
            try:
                os.unlink(path)
                folded += 1
            except OSError:
                pass
        return folded

    def flush(self) -> None:
        snapshot = self.registry.snapshot()
        with self._flush_lock:
            fd, tmp = tempfile.mkstemp(prefix=".flush-", suffix=".tmp",
                                       dir=self.directory)
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(snapshot, handle, separators=(",", ":"))
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def _sibling_snapshots(self) -> List[Dict[str, object]]:
        snapshots = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return snapshots
        for name in names:
            if not name.startswith("proc-") or not name.endswith(".json"):
                continue
            if name == os.path.basename(self.path):
                continue  # our slice comes from the live registry
            try:
                with open(os.path.join(self.directory, name)) as handle:
                    snapshots.append(json.load(handle))
            except (OSError, ValueError):
                continue  # torn or vanished: skip, the owner will re-flush
        return snapshots

    def aggregate(self) -> Dict[str, object]:
        snapshots = self._sibling_snapshots()
        mine = self.registry.snapshot()
        live = {s["pid"] for s in snapshots if _snapshot_owner_alive(s)}
        live.add(mine["pid"])
        return merge_snapshots(snapshots + [mine], live_pids=live)

    def render(self) -> str:
        """The fleet-wide Prometheus text (flushes first, so a scrape of
        any process publishes that process's latest numbers too)."""
        self.flush()
        return render_snapshot(self.aggregate())
