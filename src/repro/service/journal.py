"""Append-only job journal: the service's durable queue of record.

Per-job ``jobs/<id>.json`` records (PR 5) already survive a graceful
drain, but they are one process's private bookkeeping: after a SIGKILL
nothing says *which* jobs the dead process still owed, and with N
pre-forked server processes over one state directory nothing stops two
survivors from both re-admitting the same queued job.  The journal fixes
both with the classic recipe:

* **Append-only NDJSON log** (``journal/journal.ndjson``): every job
  transition -- ``submitted`` (with the full request, so the journal is
  self-contained), ``started``, ``requeued``, ``done``/``failed``/
  ``cancelled``, and recovery ``claimed`` records -- is one JSON line
  appended under an ``flock``.  A SIGKILL can at worst tear the final
  line; :meth:`JobJournal.replay` tolerates exactly that (a torn
  *middle* line would mean filesystem corruption and is skipped with a
  count).
* **Snapshot compaction** (``journal/snapshot.json``): replay folds the
  log into one record per job id; :meth:`JobJournal.compact` persists
  that fold (plus an optional extra blob -- the service embeds a
  metrics snapshot) and truncates the log, so the journal's size tracks
  the *live* job population, not service uptime.
* **Idempotent replay, exactly-once claims**: replay is keyed by job
  id -- re-applying any suffix of the log is a no-op on the folded
  state.  Recovery runs under the journal lock: a process that wants to
  re-admit an orphaned (queued/running, owner dead) job first appends
  ``claimed`` with its own pid; the next process's replay sees a live
  owner and leaves the job alone.  That is what makes "queued jobs
  survive SIGKILL and are re-admitted exactly once" hold across any mix
  of restarts and pre-forked siblings.

Lock discipline: ``flock`` on ``journal/.lock`` serialises appends,
compaction, and recovery across processes.  Appends hold it for one
``write``; recovery holds it across replay-then-claim (the only
read-modify-write).
"""

from __future__ import annotations

import fcntl
import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["JobJournal", "pid_alive", "process_start_time", "owner_alive",
           "own_start"]

# kinds that transfer ownership to the appending process
_OWNING_KINDS = ("submitted", "claimed", "started")
# kinds after which a job sits in the queue again
_TERMINAL_KINDS = ("done", "failed", "cancelled")


def pid_alive(pid: Optional[int]) -> bool:
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, different user
        return True
    except OSError:  # pragma: no cover
        return False
    return True


def process_start_time(pid: Optional[int]) -> Optional[int]:
    """The kernel start time (clock ticks since boot) of *pid*, read
    from ``/proc/<pid>/stat``; ``None`` where /proc is unavailable
    (non-Linux) or the process is gone.  (pid, start time) identifies a
    process incarnation -- a recycled pid gets a different start."""
    if not pid:
        return None
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read()
        # the comm field may itself contain spaces and ')'; everything
        # after the LAST ')' is fixed-position -- index 0 is field 3
        # (state), so starttime (field 22) is index 19
        fields = data.rsplit(b")", 1)[1].split()
        return int(fields[19])
    except (OSError, ValueError, IndexError):
        return None


_own_start_cache: Dict[int, Optional[int]] = {}


def own_start() -> Optional[int]:
    """This process's start-time token (cached per pid, so a fork gets
    its own fresh value)."""
    pid = os.getpid()
    if pid not in _own_start_cache:
        _own_start_cache[pid] = process_start_time(pid)
    return _own_start_cache[pid]


def owner_alive(pid: Optional[int],
                start: Optional[int] = None) -> bool:
    """Is the process that recorded ``(pid, start)`` still the one
    running as *pid*?  A bare pid check would call a recycled pid alive
    and strand its orphaned jobs forever; comparing the recorded start
    time catches that wherever the platform exposes it (a record with
    no start, or a platform with no /proc, degrades to the pid check).
    """
    if not pid_alive(pid):
        return False
    if start is None:
        return True
    current = process_start_time(pid)
    return current is None or current == start


class JobJournal:
    """One state directory's journal (safe for N concurrent processes)."""

    def __init__(self, directory: str):
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.log_path = os.path.join(self.directory, "journal.ndjson")
        self.snapshot_path = os.path.join(self.directory, "snapshot.json")
        self._lock_path = os.path.join(self.directory, ".lock")
        self.torn_lines = 0

    # -- locking -------------------------------------------------------------

    @contextmanager
    def lock(self) -> Iterator[None]:
        """The cross-process journal lock (flock; reentrancy not needed:
        appends inside a locked recovery use the unlocked writer)."""
        with open(self._lock_path, "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- writing -------------------------------------------------------------

    def append(self, kind: str, job_id: str, **fields: object) -> None:
        """Append one transition under the lock (one line, one write)."""
        with self.lock():
            self.append_locked(kind, job_id, **fields)

    def append_locked(self, kind: str, job_id: str,
                      **fields: object) -> None:
        """Append while the caller already holds :meth:`lock`."""
        record: Dict[str, object] = {
            "kind": kind, "job": job_id, "pid": os.getpid(),
            "pid_start": own_start(), "t": round(time.time(), 4),
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with open(self.log_path, "a") as handle:
            handle.write(line)

    # -- reading -------------------------------------------------------------

    def _iter_log(self) -> Iterator[Dict[str, object]]:
        try:
            with open(self.log_path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return
        lines = raw.split(b"\n")
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # a torn final line is the expected SIGKILL residue;
                # anything earlier is corruption we skip but count
                self.torn_lines += 1

    def replay(self) -> Dict[str, Dict[str, object]]:
        """Fold snapshot + log into one record per job id::

            {job_id: {"state", "tenant", "owner", "request",
                      "fingerprint", "verdict", "counts": {kind: n},
                      "claims": [...], "first_t", "last_t"}}

        ``owner`` is the pid of the last process that took
        responsibility for the job (submitted / claimed / started);
        recovery treats a non-terminal job with a dead owner as
        orphaned.
        """
        jobs: Dict[str, Dict[str, object]] = {}
        try:
            with open(self.snapshot_path) as handle:
                snapshot = json.load(handle)
            jobs = {job_id: dict(record) for job_id, record
                    in snapshot.get("jobs", {}).items()}
        except (OSError, ValueError):
            pass
        for entry in self._iter_log():
            job_id = entry.get("job")
            kind = entry.get("kind")
            if not isinstance(job_id, str) or not isinstance(kind, str):
                continue
            record = jobs.setdefault(job_id, {
                "state": None, "tenant": None, "owner": None,
                "owner_start": None, "request": None, "fingerprint": None,
                "verdict": None, "counts": {}, "claims": [],
                "first_t": entry.get("t"),
            })
            counts = record.setdefault("counts", {})
            counts[kind] = counts.get(kind, 0) + 1
            record["last_t"] = entry.get("t")
            if kind in _OWNING_KINDS:
                record["owner"] = entry.get("pid")
                record["owner_start"] = entry.get("pid_start")
            if kind == "submitted":
                record["state"] = "queued"
                record["tenant"] = entry.get("tenant", record["tenant"])
                record["fingerprint"] = entry.get(
                    "fingerprint", record["fingerprint"])
                if entry.get("request") is not None:
                    record["request"] = entry["request"]
            elif kind == "started":
                record["state"] = "running"
            elif kind == "requeued":
                record["state"] = "queued"
            elif kind == "claimed":
                record["state"] = "queued"
                record.setdefault("claims", []).append(
                    {"pid": entry.get("pid"), "t": entry.get("t")})
            elif kind in _TERMINAL_KINDS:
                record["state"] = kind
                if entry.get("verdict") is not None:
                    record["verdict"] = entry["verdict"]
        return jobs

    def orphans(self, jobs: Optional[Dict[str, Dict[str, object]]] = None
                ) -> List[str]:
        """Job ids that are non-terminal with no live owner -- the set a
        recovering process may claim (call under :meth:`lock`)."""
        jobs = self.replay() if jobs is None else jobs
        own = os.getpid()
        return [job_id for job_id, record in sorted(jobs.items())
                if record.get("state") in ("queued", "running")
                and (record.get("owner") == own
                     or not owner_alive(record.get("owner"),
                                        record.get("owner_start")))]

    # -- compaction ----------------------------------------------------------

    def compact(self, extra: Optional[Dict[str, object]] = None,
                drop_terminal_older_than: Optional[float] = None) -> int:
        """Fold the log into ``snapshot.json`` and truncate it.  Returns
        the number of job records retained.  *extra* is persisted
        verbatim in the snapshot (the service stores a metrics snapshot
        there, its run-manifest twin).  Terminal records older than
        *drop_terminal_older_than* seconds are aged out."""
        with self.lock():
            jobs = self.replay()
            if drop_terminal_older_than is not None:
                horizon = time.time() - drop_terminal_older_than
                jobs = {job_id: record for job_id, record in jobs.items()
                        if record.get("state") not in _TERMINAL_KINDS
                        or (record.get("last_t") or 0) >= horizon}
            snapshot: Dict[str, object] = {
                "version": 1, "t": round(time.time(), 4), "jobs": jobs,
            }
            if extra:
                snapshot["extra"] = extra
            fd, tmp = tempfile.mkstemp(prefix=".snapshot-", suffix=".tmp",
                                       dir=self.directory)
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(snapshot, handle, separators=(",", ":"))
                os.replace(tmp, self.snapshot_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            with open(self.log_path, "w"):
                pass  # truncate: its contents are folded into the snapshot
            return len(jobs)

    def log_size(self) -> int:
        try:
            return os.path.getsize(self.log_path)
        except OSError:
            return 0
