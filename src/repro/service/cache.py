"""Content-addressed result caches for the checking service.

A check is a pure function of (module source, spec name, semantic check
configuration): the explorer is deterministic for any worker count, the
checkpoint layer makes interrupted runs bit-for-bit resumable, and the
reduction layer preserves verdicts and traces.  That purity is what
makes content addressing sound -- the cache key never has to mention
*how* a result was computed (workers, checkpoint cadence, pacing), only
*what* was asked.

Two stores share that key and one counter/summary surface:

* :class:`ResultCache` -- the flat single-directory store (PR 5), now
  with an optional ``max_entries`` LRU bound so a long-lived server no
  longer grows without limit, an ``evictions`` counter, and
  ``summary()``/``to_json()`` in the :class:`~repro.checker.stats
  .ExploreStats` style so a hit-rate or eviction-storm regression is
  visible in one line.
* :class:`ShardedResultCache` -- the multi-process store: entries land
  in ``shard-XX/`` directories keyed by the fingerprint's first byte,
  bounded per shard by entry count and bytes, with eviction serialised
  by a per-shard ``flock`` so N pre-forked server processes can write
  concurrently without double-unlinking or unbounded growth.  Reads are
  lock-free (writes are atomic rename) and bump the entry's mtime, so
  eviction order is least-recently-*used*, not least-recently-written.
  Entries written by the flat layout are still found (legacy fallback),
  so an upgraded server keeps its warm cache.

Writes are atomic (write-temp-then-rename), so a crash mid-``put``
never leaves a torn entry for a later server to trust.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import tempfile
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["canonical_fingerprint", "ResultCache", "ShardedResultCache"]


def canonical_fingerprint(module_source: str, spec: str,
                          config: Dict[str, object]) -> str:
    """The content address of a check: SHA-256 over the canonical JSON of
    (module source, spec name, semantic config).

    *config* must contain exactly the knobs that can change the verdict,
    the reported trace, or the explored graph -- invariants, properties,
    ``max_states``, ``por`` -- and none of the execution-only knobs
    (worker count, checkpoint cadence, pacing), which the engine
    guarantees cannot.  Key order and whitespace never matter: the JSON
    is sorted and minimally separated.
    """
    canonical = json.dumps(
        {"module": module_source, "spec": spec, "config": config},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write_json(directory: str, path: str,
                       document: Dict[str, object]) -> None:
    fd, tmp_path = tempfile.mkstemp(prefix=".put-", suffix=".tmp",
                                    dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, separators=(",", ":"))
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class _CacheCounters:
    """The shared hit/miss/eviction accounting + summary surface."""

    def __init__(self,
                 on_event: Optional[Callable[[str, int], None]] = None):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._on_event = on_event

    def _record(self, kind: str, amount: int = 1) -> None:
        setattr(self, kind, getattr(self, kind) + amount)
        if self._on_event is not None:
            self._on_event(kind, amount)

    def counters(self) -> Dict[str, int]:
        """Health counters for ``/healthz`` and ``/metrics``."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self)}

    def __len__(self) -> int:  # pragma: no cover - subclasses override
        raise NotImplementedError

    def summary(self, indent: str = "") -> str:
        """One human line, ExploreStats-style: hit rate + pressure."""
        lookups = self.hits + self.misses
        rate = (100.0 * self.hits / lookups) if lookups else 0.0
        return (f"{indent}result cache: {len(self)} entries, "
                f"{self.hits} hits / {self.misses} misses "
                f"({rate:.1f}% hit rate), {self.evictions} evictions")

    def to_json(self, indent: Optional[int] = None) -> str:
        """Machine-readable twin of :meth:`summary`."""
        return json.dumps(self.counters(), indent=indent, sort_keys=True)


class ResultCache(_CacheCounters):
    """Fingerprint -> result-document store, disk-backed and crash-safe.

    ``directory=None`` keeps the cache purely in memory (useful for
    tests and embedding); otherwise every :meth:`put` also lands as
    ``<directory>/<fp>.json`` and a fresh process re-reads entries
    lazily on :meth:`get`.  ``max_entries`` bounds the store: past it,
    the least-recently-used entries (by disk mtime when disk-backed,
    insertion order in memory) are evicted and counted.
    """

    def __init__(self, directory: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 on_event: Optional[Callable[[str, int], None]] = None):
        super().__init__(on_event)
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = directory
        self.max_entries = max_entries
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._memory: Dict[str, Dict[str, object]] = {}

    def _path(self, fingerprint: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, fingerprint + ".json")

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The cached result document, or None.  Counts hits/misses."""
        entry = self._memory.get(fingerprint)
        if entry is not None and self._memory.pop(fingerprint, None) is not None:
            self._memory[fingerprint] = entry  # re-insert: LRU recency
        if entry is None and self.directory is not None:
            try:
                with open(self._path(fingerprint)) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                entry = None  # absent or torn-by-external-meddling: a miss
            else:
                self._memory[fingerprint] = entry
                try:  # recency for mtime-ordered eviction
                    os.utime(self._path(fingerprint))
                except OSError:
                    pass
        if entry is None:
            self._record("misses")
            return None
        self._record("hits")
        return entry

    def put(self, fingerprint: str, result: Dict[str, object]) -> None:
        """Store a result document (atomically, when disk-backed)."""
        self._memory[fingerprint] = result
        if self.directory is not None:
            _atomic_write_json(self.directory, self._path(fingerprint),
                               result)
        self._evict()

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        if self.directory is None:
            while len(self._memory) > self.max_entries:
                oldest = next(iter(self._memory))
                del self._memory[oldest]
                self._record("evictions")
            return
        entries: List[Tuple[float, str]] = []
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            try:
                entries.append(
                    (os.path.getmtime(os.path.join(self.directory, name)),
                     name[:-5]))
            except OSError:
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _mtime, fingerprint in entries[:excess]:
            try:
                os.unlink(self._path(fingerprint))
            except OSError:
                continue
            self._memory.pop(fingerprint, None)
            self._record("evictions")

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        return (self.directory is not None
                and os.path.exists(self._path(fingerprint)))

    def __len__(self) -> int:
        if self.directory is None:
            return len(self._memory)
        on_disk = {name[:-5] for name in os.listdir(self.directory)
                   if name.endswith(".json")}
        return len(on_disk | set(self._memory))


class ShardedResultCache(_CacheCounters):
    """The multi-process cache: fingerprint-sharded, LRU-bounded.

    The first fingerprint byte picks one of ``shards`` directories, so
    eviction scans touch ~1/shards of the population and concurrent
    writers in different shards never contend.  Per-shard bounds are the
    global ``max_entries``/``max_bytes`` split evenly (rounded up) --
    SHA-256 fingerprints spread uniformly, so the global bound holds to
    within a shard's worth of slack.  Eviction runs under a per-shard
    ``flock`` (two processes may both see a full shard; the lock makes
    one of them evict and the other find it already done -- a concurrent
    unlink is tolerated, not double-counted).
    """

    def __init__(self, directory: str, shards: int = 16,
                 max_entries: Optional[int] = 4096,
                 max_bytes: Optional[int] = None,
                 memory_entries: int = 256,
                 on_event: Optional[Callable[[str, int], None]] = None):
        super().__init__(on_event)
        if shards < 1 or shards > 256:
            raise ValueError(f"shards must be in 1..256, got {shards}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if memory_entries < 0:
            raise ValueError(
                f"memory_entries must be >= 0, got {memory_entries}")
        self.directory = os.path.abspath(directory)
        self.shards = shards
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        os.makedirs(self.directory, exist_ok=True)
        self._memory: Dict[str, Dict[str, object]] = {}

    # -- layout --------------------------------------------------------------

    def _shard_dir(self, fingerprint: str) -> str:
        shard = int(fingerprint[:2], 16) % self.shards
        return os.path.join(self.directory, f"shard-{shard:02x}")

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self._shard_dir(fingerprint),
                            fingerprint + ".json")

    def _legacy_path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, fingerprint + ".json")

    def _shard_lock(self, shard_dir: str):
        handle = open(os.path.join(shard_dir, ".lock"), "a")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        return handle

    # -- the store -----------------------------------------------------------

    def _remember(self, fingerprint: str,
                  entry: Dict[str, object]) -> None:
        if self.memory_entries == 0:
            return
        self._memory.pop(fingerprint, None)
        self._memory[fingerprint] = entry
        while len(self._memory) > self.memory_entries:
            self._memory.pop(next(iter(self._memory)))

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        entry = self._memory.get(fingerprint)
        if entry is not None:
            self._remember(fingerprint, entry)  # refresh recency
            self._record("hits")
            return entry
        for path in (self._path(fingerprint),
                     self._legacy_path(fingerprint)):
            try:
                with open(path) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            self._remember(fingerprint, entry)
            try:
                os.utime(path)  # LRU recency for the evictor
            except OSError:
                pass
            self._record("hits")
            return entry
        self._record("misses")
        return None

    def put(self, fingerprint: str, result: Dict[str, object]) -> None:
        shard_dir = self._shard_dir(fingerprint)
        os.makedirs(shard_dir, exist_ok=True)
        _atomic_write_json(shard_dir, self._path(fingerprint), result)
        self._remember(fingerprint, result)
        self._evict_shard(shard_dir)

    def _shard_bound(self, total: Optional[int]) -> Optional[int]:
        if total is None:
            return None
        return max(1, -(-total // self.shards))  # ceil division

    def _evict_shard(self, shard_dir: str) -> None:
        entry_bound = self._shard_bound(self.max_entries)
        byte_bound = self._shard_bound(self.max_bytes)
        if entry_bound is None and byte_bound is None:
            return
        lock = self._shard_lock(shard_dir)
        try:
            entries: List[Tuple[float, int, str]] = []
            total_bytes = 0
            for name in os.listdir(shard_dir):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                entries.append((info.st_mtime, info.st_size, name[:-5]))
                total_bytes += info.st_size
            over_entries = (len(entries) - entry_bound
                            if entry_bound is not None else 0)
            over_bytes = (total_bytes - byte_bound
                          if byte_bound is not None else 0)
            if over_entries <= 0 and over_bytes <= 0:
                return
            entries.sort()  # oldest mtime first: least recently used
            evicted = 0
            for mtime, size, fingerprint in entries:
                if over_entries <= 0 and over_bytes <= 0:
                    break
                try:
                    os.unlink(os.path.join(shard_dir,
                                           fingerprint + ".json"))
                except OSError:
                    continue  # a sibling got there first
                self._memory.pop(fingerprint, None)
                over_entries -= 1
                over_bytes -= size
                evicted += 1
            if evicted:
                self._record("evictions", evicted)
        finally:
            fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
            lock.close()

    # -- views ---------------------------------------------------------------

    def _iter_entry_paths(self) -> List[str]:
        paths = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return paths
        for name in names:
            full = os.path.join(self.directory, name)
            if name.startswith("shard-") and os.path.isdir(full):
                try:
                    paths.extend(os.path.join(full, entry)
                                 for entry in os.listdir(full)
                                 if entry.endswith(".json"))
                except OSError:
                    continue
            elif name.endswith(".json"):
                paths.append(full)  # legacy flat entries still count
        return paths

    def __contains__(self, fingerprint: str) -> bool:
        return (fingerprint in self._memory
                or os.path.exists(self._path(fingerprint))
                or os.path.exists(self._legacy_path(fingerprint)))

    def __len__(self) -> int:
        return len(self._iter_entry_paths())

    def total_bytes(self) -> int:
        total = 0
        for path in self._iter_entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        return total

    def counters(self) -> Dict[str, int]:
        counters = super().counters()
        counters["bytes"] = self.total_bytes()
        counters["shards"] = self.shards
        return counters
