"""Content-addressed result cache for the checking service.

A check is a pure function of (module source, spec name, semantic check
configuration): the explorer is deterministic for any worker count, the
checkpoint layer makes interrupted runs bit-for-bit resumable, and the
reduction layer preserves verdicts and traces.  That purity is what
makes content addressing sound -- the cache key never has to mention
*how* a result was computed (workers, checkpoint cadence, pacing), only
*what* was asked.

:func:`canonical_fingerprint` hashes the canonical JSON rendering of the
request; :class:`ResultCache` stores one JSON document per fingerprint
(verdict, per-check results with portable counterexample traces, the
:meth:`~repro.checker.stats.ExploreStats.as_dict` summary, and a graph
digest) under ``<dir>/<fp>.json``, with an in-memory layer in front so a
warm hit costs one dict lookup.  Writes are atomic
(write-temp-then-rename), so a crash mid-``put`` never leaves a torn
entry for a later server to trust.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

__all__ = ["canonical_fingerprint", "ResultCache"]


def canonical_fingerprint(module_source: str, spec: str,
                          config: Dict[str, object]) -> str:
    """The content address of a check: SHA-256 over the canonical JSON of
    (module source, spec name, semantic config).

    *config* must contain exactly the knobs that can change the verdict,
    the reported trace, or the explored graph -- invariants, properties,
    ``max_states``, ``por`` -- and none of the execution-only knobs
    (worker count, checkpoint cadence, pacing), which the engine
    guarantees cannot.  Key order and whitespace never matter: the JSON
    is sorted and minimally separated.
    """
    canonical = json.dumps(
        {"module": module_source, "spec": spec, "config": config},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Fingerprint -> result-document store, disk-backed and crash-safe.

    ``directory=None`` keeps the cache purely in memory (useful for
    tests and embedding); otherwise every :meth:`put` also lands as
    ``<directory>/<fp>.json`` and a fresh process re-reads entries
    lazily on :meth:`get`.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._memory: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, fingerprint + ".json")

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The cached result document, or None.  Counts hits/misses."""
        entry = self._memory.get(fingerprint)
        if entry is None and self.directory is not None:
            try:
                with open(self._path(fingerprint)) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                entry = None  # absent or torn-by-external-meddling: a miss
            else:
                self._memory[fingerprint] = entry
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, fingerprint: str, result: Dict[str, object]) -> None:
        """Store a result document (atomically, when disk-backed)."""
        self._memory[fingerprint] = result
        if self.directory is None:
            return
        path = self._path(fingerprint)
        fd, tmp_path = tempfile.mkstemp(
            prefix=fingerprint[:16] + ".", suffix=".tmp", dir=self.directory)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(result, handle, separators=(",", ":"))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        return (self.directory is not None
                and os.path.exists(self._path(fingerprint)))

    def __len__(self) -> int:
        if self.directory is None:
            return len(self._memory)
        on_disk = {name[:-5] for name in os.listdir(self.directory)
                   if name.endswith(".json")}
        return len(on_disk | set(self._memory))

    def counters(self) -> Dict[str, int]:
        """Health counters for ``/healthz``."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self)}
