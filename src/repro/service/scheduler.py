"""Per-tenant quotas and fair dispatch for the checking service.

The job manager used to run one global FIFO behind one global admission
limit, so a single tenant submitting 10³ checks would occupy every queue
slot and every pool thread while everyone else collected 429s.  This
module splits that into three layers, all per tenant (tenants arrive as
the ``X-Repro-Tenant`` header / ``repro submit --tenant``):

* **Rate limiting** -- a :class:`TokenBucket` per tenant (``rate``
  tokens/second, ``burst`` capacity).  A submission with no token is
  rejected with :class:`TenantThrottled`, whose ``retry_after`` is
  derived from *that tenant's own bucket* -- exactly when their next
  token lands, not a global guess -- and surfaces as ``429`` +
  ``Retry-After``.
* **Bounds** -- ``max_queued`` caps one tenant's share of the queue and
  ``max_inflight`` their concurrently running jobs, so the global
  ``queue_limit``/pool stay available to everyone else.
* **Fair dispatch** -- :class:`FairScheduler` keeps one FIFO per tenant
  and serves them deficit-round-robin: each visit grants a tenant
  ``quantum`` deficit, dispatching a job costs one unit, and a tenant
  at its in-flight cap is skipped without accruing deficit.  With unit
  job costs this degenerates to strict round robin over the active
  tenants -- the property the load test asserts is that one tenant's
  10³ submissions keep every other tenant's throughput within 2x of
  fair share.

The scheduler is event-loop-confined state (no locks): the manager
calls it only from the asyncio thread.  :class:`QueueFull` lives here
(re-exported by :mod:`repro.service.jobs` for compatibility) so
:class:`TenantThrottled` can subclass it and every 429 path is one
``except QueueFull``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["QueueFull", "TenantThrottled", "TenantPolicy", "TokenBucket",
           "FairScheduler", "DEFAULT_TENANT", "valid_tenant"]

DEFAULT_TENANT = "default"

_TENANT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def valid_tenant(name: object) -> bool:
    """Tenant names travel in headers, journal lines, and metric labels,
    so they are restricted to 1-64 chars of [A-Za-z0-9._-]."""
    return (isinstance(name, str) and 0 < len(name) <= 64
            and set(name) <= _TENANT_CHARS)


class QueueFull(Exception):
    """The pending queue is at its admission limit; retry later."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"job queue is full; retry in ~{retry_after:g}s")
        self.retry_after = retry_after


class TenantThrottled(QueueFull):
    """One tenant hit its own quota (not the shared queue limit).

    ``reason`` is a machine-readable code (``"rate"`` or ``"queue"``;
    it becomes a metrics label), ``detail`` the human sentence.
    """

    def __init__(self, tenant: str, reason: str, retry_after: float,
                 detail: str = ""):
        Exception.__init__(
            self, f"tenant {tenant!r} {detail or reason}; retry in "
                  f"~{retry_after:g}s")
        self.retry_after = retry_after
        self.tenant = tenant
        self.reason = reason


@dataclass(frozen=True)
class TenantPolicy:
    """The quota every tenant gets (uniform; ``None`` disables a knob).

    The defaults are fully permissive so embedded/test managers behave
    exactly like the pre-tenant service; ``repro serve`` exposes each
    knob as a flag.
    """

    rate: Optional[float] = None        # admissions per second
    burst: int = 8                      # bucket capacity
    max_inflight: Optional[int] = None  # concurrently running jobs
    max_queued: Optional[int] = None    # jobs waiting in the queue

    def __post_init__(self):
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        for name in ("max_inflight", "max_queued"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")


class TokenBucket:
    """The classic leaky meter: ``rate`` tokens/second up to ``burst``."""

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until this bucket holds a whole token again."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class _TenantState:
    __slots__ = ("name", "queue", "bucket", "deficit", "inflight",
                 "admitted", "dispatched", "completed", "throttled")

    def __init__(self, name: str, bucket: Optional[TokenBucket]):
        self.name = name
        self.queue: Deque[str] = deque()
        self.bucket = bucket
        self.deficit = 0.0
        self.inflight = 0
        self.admitted = 0
        self.dispatched = 0
        self.completed = 0
        self.throttled = 0


class FairScheduler:
    """Deficit-round-robin dispatch over per-tenant FIFOs."""

    def __init__(self, policy: Optional[TenantPolicy] = None,
                 quantum: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.policy = policy or TenantPolicy()
        self.quantum = quantum
        self._clock = clock
        self._tenants: Dict[str, _TenantState] = {}
        self._active: Deque[str] = deque()  # tenants with queued jobs

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            bucket = None
            if self.policy.rate is not None:
                bucket = TokenBucket(self.policy.rate, self.policy.burst,
                                     clock=self._clock)
            state = _TenantState(tenant, bucket)
            self._tenants[tenant] = state
        return state

    # -- admission -----------------------------------------------------------

    def admit(self, tenant: str) -> None:
        """Charge one admission against *tenant*'s quota; raises
        :class:`TenantThrottled` when their bucket is dry or their queue
        share is spent.  Cache hits and coalesced submissions are never
        charged (the manager only calls this when real work will queue).
        """
        state = self._state(tenant)
        if self.policy.max_queued is not None \
                and len(state.queue) >= self.policy.max_queued:
            state.throttled += 1
            raise TenantThrottled(
                tenant, "queue",
                retry_after=max(1.0, float(len(state.queue))),
                detail=f"has {len(state.queue)} queued jobs "
                       f"(max {self.policy.max_queued})")
        if state.bucket is not None and not state.bucket.try_take():
            state.throttled += 1
            raise TenantThrottled(
                tenant, "rate",
                retry_after=round(max(0.1, state.bucket.retry_after()), 3),
                detail="is rate-limited")
        state.admitted += 1

    # -- queue ---------------------------------------------------------------

    def push(self, tenant: str, job_id: str) -> None:
        state = self._state(tenant)
        state.queue.append(job_id)
        if tenant not in self._active:
            self._active.append(tenant)

    def pop(self) -> Optional[Tuple[str, str]]:
        """The next (tenant, job_id) under DRR, or None when every
        queued tenant is at its in-flight cap (or nothing is queued).

        Cycles the active list until someone's deficit reaches a whole
        job: with ``quantum >= 1`` one pass suffices; a fractional
        quantum just takes ``ceil(1/quantum)`` passes (each visit grows
        a dispatchable tenant's deficit by ``quantum``, so progress is
        guaranteed and a small quantum can never stall dispatch)."""
        skipped: List[str] = []
        result: Optional[Tuple[str, str]] = None
        while result is None:
            dispatchable = False
            for _ in range(len(self._active)):
                tenant = self._active.popleft()
                state = self._tenants[tenant]
                if not state.queue:
                    state.deficit = 0.0
                    continue
                if self.policy.max_inflight is not None \
                        and state.inflight >= self.policy.max_inflight:
                    # no deficit while capped: fairness is about offered
                    # service, and this tenant cannot accept any
                    skipped.append(tenant)
                    continue
                dispatchable = True
                state.deficit += self.quantum
                if state.deficit >= 1.0:
                    state.deficit -= 1.0
                    job_id = state.queue.popleft()
                    state.inflight += 1
                    state.dispatched += 1
                    if state.queue:
                        self._active.append(tenant)
                    else:
                        state.deficit = 0.0
                    result = (tenant, job_id)
                    break
                self._active.append(tenant)
            if not dispatchable:
                break
        # capped tenants stay active (behind whoever we just served) so
        # a release() can immediately dispatch them
        self._active.extend(skipped)
        return result

    def release(self, tenant: str, completed: bool = True) -> None:
        """A dispatched job left its running slot."""
        state = self._state(tenant)
        if state.inflight > 0:
            state.inflight -= 1
        if completed:
            state.completed += 1

    def forget(self, tenant: str, job_id: str) -> bool:
        """Drop a queued job (cancellation while queued)."""
        state = self._tenants.get(tenant)
        if state is None:
            return False
        try:
            state.queue.remove(job_id)
        except ValueError:
            return False
        return True

    # -- views ---------------------------------------------------------------

    def depth(self) -> int:
        return sum(len(s.queue) for s in self._tenants.values())

    def inflight(self) -> int:
        return sum(s.inflight for s in self._tenants.values())

    def tenants_view(self) -> Dict[str, Dict[str, object]]:
        """Operator-facing state for ``GET /tenants``."""
        view: Dict[str, Dict[str, object]] = {}
        for name, state in sorted(self._tenants.items()):
            entry: Dict[str, object] = {
                "queued": len(state.queue),
                "inflight": state.inflight,
                "deficit": round(state.deficit, 6),
                "admitted": state.admitted,
                "dispatched": state.dispatched,
                "completed": state.completed,
                "throttled": state.throttled,
            }
            if state.bucket is not None:
                entry["tokens"] = round(state.bucket.tokens, 3)
                entry["rate"] = state.bucket.rate
            view[name] = entry
        return view
