"""Checking-as-a-service: an asyncio job server over the explorer.

Every entry point before this package was a one-shot CLI process: each
``repro check`` re-explored from scratch even when the module, spec, and
flags were byte-identical, and nothing could watch a long run without
owning its terminal.  This package splits *submission* from *checking*
the way TLAPS's proof manager splits obligation generation from backend
provers (see PAPERS.md):

* :mod:`repro.service.cache` -- content-addressed result caches keyed
  by a canonical fingerprint of (module source, spec name, semantic
  check config), so byte-identical resubmissions return in O(1); the
  sharded variant is LRU-bounded and safe for N concurrent writer
  processes;
* :mod:`repro.service.journal` -- the append-only job journal +
  snapshot compaction that makes the queue durable: queued jobs survive
  SIGKILL and are re-admitted exactly once across any mix of restarts
  and pre-forked sibling processes;
* :mod:`repro.service.scheduler` -- per-tenant token-bucket rate
  limits, queue/in-flight bounds, and deficit-round-robin dispatch, so
  no tenant can starve the rest;
* :mod:`repro.service.metrics` -- stdlib counters/gauges/histograms
  rendered in the Prometheus text format at ``GET /metrics``, merged
  across server processes;
* :mod:`repro.service.jobs` -- the job manager: admission control over a
  bounded queue (full -> rejected with a retry-after hint), a bounded
  pool of concurrent explorations, a per-job
  ``queued -> running -> done/failed/cancelled`` state machine, live
  per-level progress events, and graceful shutdown that checkpoints
  in-flight jobs so a restarted server resumes them;
* :mod:`repro.service.server` -- a stdlib-only asyncio HTTP front end
  (``POST /jobs``, ``GET /jobs/<id>``, NDJSON event streaming,
  ``DELETE /jobs/<id>``, ``/healthz``, ``/metrics``, ``/tenants``),
  optionally pre-forked (``repro serve --procs N``);
* :mod:`repro.service.client` -- the thin blocking client behind the
  ``repro serve`` / ``repro submit`` / ``repro watch`` / ``repro
  cancel`` / ``repro admin`` CLI verbs, with Retry-After-honouring
  backoff on 429.

Everything is standard library only; the exploration itself runs through
the same :func:`repro.checker.explore_parallel` / checkpoint machinery
the CLI uses, so verdicts, traces, and graphs are bit-for-bit the ones a
local run would produce.
"""

from .cache import ResultCache, ShardedResultCache, canonical_fingerprint
from .client import ServiceClient, ServiceError, QueueFullError
from .jobs import CheckRequest, Job, JobManager, QueueFull, TenantThrottled
from .journal import JobJournal
from .metrics import MetricsRegistry
from .scheduler import DEFAULT_TENANT, FairScheduler, TenantPolicy
from .server import BackgroundServer, CheckService, run_server

__all__ = [
    "ResultCache",
    "ShardedResultCache",
    "canonical_fingerprint",
    "CheckRequest",
    "Job",
    "JobManager",
    "JobJournal",
    "MetricsRegistry",
    "QueueFull",
    "TenantThrottled",
    "TenantPolicy",
    "FairScheduler",
    "DEFAULT_TENANT",
    "CheckService",
    "BackgroundServer",
    "run_server",
    "ServiceClient",
    "ServiceError",
    "QueueFullError",
]
