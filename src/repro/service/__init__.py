"""Checking-as-a-service: an asyncio job server over the explorer.

Every entry point before this package was a one-shot CLI process: each
``repro check`` re-explored from scratch even when the module, spec, and
flags were byte-identical, and nothing could watch a long run without
owning its terminal.  This package splits *submission* from *checking*
the way TLAPS's proof manager splits obligation generation from backend
provers (see PAPERS.md):

* :mod:`repro.service.cache` -- a content-addressed result cache keyed
  by a canonical fingerprint of (module source, spec name, semantic
  check config), so byte-identical resubmissions return in O(1);
* :mod:`repro.service.jobs` -- the job manager: admission control over a
  bounded queue (full -> rejected with a retry-after hint), a bounded
  pool of concurrent explorations, a per-job
  ``queued -> running -> done/failed/cancelled`` state machine, live
  per-level progress events, and graceful shutdown that checkpoints
  in-flight jobs so a restarted server resumes them;
* :mod:`repro.service.server` -- a stdlib-only asyncio HTTP front end
  (``POST /jobs``, ``GET /jobs/<id>``, NDJSON event streaming,
  ``DELETE /jobs/<id>``, ``/healthz``);
* :mod:`repro.service.client` -- the thin blocking client behind the
  ``repro serve`` / ``repro submit`` / ``repro watch`` / ``repro
  cancel`` CLI verbs.

Everything is standard library only; the exploration itself runs through
the same :func:`repro.checker.explore_parallel` / checkpoint machinery
the CLI uses, so verdicts, traces, and graphs are bit-for-bit the ones a
local run would produce.
"""

from .cache import ResultCache, canonical_fingerprint
from .client import ServiceClient, ServiceError, QueueFullError
from .jobs import CheckRequest, Job, JobManager, QueueFull
from .server import BackgroundServer, CheckService, run_server

__all__ = [
    "ResultCache",
    "canonical_fingerprint",
    "CheckRequest",
    "Job",
    "JobManager",
    "QueueFull",
    "CheckService",
    "BackgroundServer",
    "run_server",
    "ServiceClient",
    "ServiceError",
    "QueueFullError",
]
