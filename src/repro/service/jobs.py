"""The checking service's job manager.

A :class:`JobManager` admits :class:`CheckRequest` submissions, runs
them on a bounded pool of explorer runs, and carries each through the
per-job state machine::

    queued -> running -> done | failed | cancelled

* **Admission control / backpressure** -- at most ``queue_limit`` jobs
  may sit in ``queued``; a submission beyond that raises
  :class:`QueueFull` carrying a retry-after hint derived from recent
  run times, which the HTTP layer turns into ``429 Retry-After``.
* **Content-addressed caching** -- a submission whose fingerprint (see
  :func:`repro.service.cache.canonical_fingerprint`) already has a
  cached result completes instantly with ``cache_hit=True`` and the
  cached verdict/trace/stats; a submission identical to a job currently
  queued or running is *coalesced* onto that job, so N clients
  submitting the same check cost one exploration.
* **Progress events** -- each job accumulates an append-only NDJSON
  event list (``queued``/``started``/``level``/``done``/...); the
  per-level rows come straight from the explorer through
  :meth:`repro.checker.stats.ExploreStats.add_level_listener`, so a
  watcher sees live frontier/state/edge counts.
* **Cancellation and graceful shutdown** -- both ride the same seam:
  the level listener raises inside the exploring thread at the next BFS
  level boundary.  A cancelled job ends ``cancelled``; an interrupted
  one (server shutdown) drops back to ``queued`` with its latest
  checkpoint on disk, is persisted, and a restarted manager resumes it
  bit-for-bit via :func:`repro.checker.checkpoint.resume` -- same
  verdict, same trace, same graph digest.

Everything the manager needs to survive a restart lives under its
``state_dir``: ``jobs/<id>.json`` records, ``jobs/<id>.events.ndjson``
event logs, ``jobs/<id>.ckpt`` exploration checkpoints, and ``cache/``
result documents.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..checker import (
    CompactGraph,
    ExploreStats,
    ReductionConfig,
    check_invariant,
    check_invariant_compact,
    check_temporal_implication,
    digest_of_graph,
    explore_compact,
    explore_parallel,
    premises_of_spec,
    resume_compact,
)
from ..checker.checkpoint import counterexample_to_portable, resume
from ..checker.graph import StateGraph, StateSpaceExplosion
from ..checker.results import CheckResult
from ..kernel import packed
from ..parser import load_module
from .cache import ResultCache, canonical_fingerprint

__all__ = [
    "CheckRequest",
    "Job",
    "JobManager",
    "QueueFull",
    "JobCancelled",
    "run_check",
    "graph_digest",
]

# verdicts that are pure functions of the request and therefore cacheable;
# "failed" (an exception) is deliberately not -- it may be environmental.
# "unknown" (symbolic, no violation within the bound) is a pure function
# of (module, invariants, depth) -- the depth is part of the cache key
_CACHEABLE_VERDICTS = ("ok", "violation", "explosion", "unknown")

_TERMINAL_STATES = ("done", "failed", "cancelled")


class QueueFull(Exception):
    """The pending queue is at its admission limit; retry later."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"job queue is full; retry in ~{retry_after:g}s")
        self.retry_after = retry_after


class JobCancelled(Exception):
    """Raised inside the exploring thread when the job was cancelled."""


class _JobInterrupted(Exception):
    """Raised inside the exploring thread on graceful server shutdown."""


@dataclass(frozen=True)
class CheckRequest:
    """One check submission: a module plus what to verify and how.

    ``module_source``/``spec``/``invariants``/``properties``/
    ``max_states``/``por``/``compact``/``engine``/``depth`` are
    *semantic* -- they address the result in the cache.  ``workers``,
    ``checkpoint_every``, and ``level_delay``
    are execution-only: the engine produces the identical graph and
    verdict for any value (``level_delay`` merely sleeps between BFS
    levels -- a pacing knob so demos and tests can watch or interrupt
    toy modules that would otherwise finish in microseconds).

    ``engine`` selects the checking engine: ``"explicit"`` (default)
    explores exhaustively; ``"symbolic"`` bounded-model-checks to
    ``depth`` steps (a clean run's verdict is ``"unknown"``, never
    ``"ok"``).  ``depth`` is only meaningful -- and only part of the
    cache key -- with the symbolic engine.
    """

    module_source: str
    spec: str = "Spec"
    invariants: Tuple[str, ...] = ()
    properties: Tuple[str, ...] = ()
    max_states: int = 200_000
    por: bool = False
    compact: bool = False
    workers: int = 1
    checkpoint_every: int = 1
    level_delay: float = 0.0
    engine: str = "explicit"
    depth: Optional[int] = None

    _FIELDS = ("module_source", "spec", "invariants", "properties",
               "max_states", "por", "compact", "workers",
               "checkpoint_every", "level_delay", "engine", "depth")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CheckRequest":
        """Validate and build a request from a JSON body; raises
        ``ValueError`` with a client-presentable message on bad input."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        module_source = payload.get("module_source")
        if not isinstance(module_source, str) or not module_source.strip():
            raise ValueError("module_source must be a non-empty string")
        spec = payload.get("spec", "Spec")
        if not isinstance(spec, str) or not spec:
            raise ValueError("spec must be a non-empty string")

        def names(key: str) -> Tuple[str, ...]:
            value = payload.get(key, ())
            if isinstance(value, str):
                value = (value,)
            if (not isinstance(value, (list, tuple))
                    or not all(isinstance(v, str) and v for v in value)):
                raise ValueError(f"{key} must be a list of definition names")
            return tuple(value)

        def bounded_int(key: str, default: int, minimum: int) -> int:
            value = payload.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(f"{key} must be an integer >= {minimum}")
            return value

        level_delay = payload.get("level_delay", 0.0)
        if not isinstance(level_delay, (int, float)) \
                or isinstance(level_delay, bool) or level_delay < 0 \
                or level_delay > 10:
            raise ValueError("level_delay must be a number in [0, 10]")
        por = payload.get("por", False)
        if not isinstance(por, bool):
            raise ValueError("por must be a boolean")
        compact = payload.get("compact", False)
        if not isinstance(compact, bool):
            raise ValueError("compact must be a boolean")
        if compact and por:
            raise ValueError("compact and por are mutually exclusive: the "
                             "compact engine has no reduction machinery")
        engine = payload.get("engine", "explicit")
        if engine not in ("explicit", "symbolic"):
            raise ValueError("engine must be 'explicit' or 'symbolic'")
        depth = payload.get("depth")
        if depth is not None and (not isinstance(depth, int)
                                  or isinstance(depth, bool) or depth < 1):
            raise ValueError("depth must be an integer >= 1")
        if depth is not None and engine != "symbolic":
            raise ValueError("depth is the symbolic unrolling bound; it "
                             "requires engine='symbolic'")
        if engine == "symbolic":
            for flag, active in (("por", por), ("compact", compact),
                                 ("properties", bool(names("properties")))):
                if active:
                    raise ValueError(
                        f"engine='symbolic' is incompatible with {flag}: "
                        f"bounded model checking never builds the state "
                        f"graph that option configures")
            if not names("invariants"):
                raise ValueError("engine='symbolic' needs at least one "
                                 "invariant to bound-check")
        return cls(
            module_source=module_source,
            spec=spec,
            invariants=names("invariants"),
            properties=names("properties"),
            max_states=bounded_int("max_states", 200_000, 1),
            por=por,
            compact=compact,
            workers=bounded_int("workers", 1, 0),
            checkpoint_every=bounded_int("checkpoint_every", 1, 1),
            level_delay=float(level_delay),
            engine=engine,
            depth=depth,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "module_source": self.module_source,
            "spec": self.spec,
            "invariants": list(self.invariants),
            "properties": list(self.properties),
            "max_states": self.max_states,
            "por": self.por,
            "compact": self.compact,
            "workers": self.workers,
            "checkpoint_every": self.checkpoint_every,
            "level_delay": self.level_delay,
            "engine": self.engine,
            "depth": self.depth,
        }

    def semantic_config(self) -> Dict[str, object]:
        """The slice of the request that can change the result -- the
        cache key covers exactly this (plus module source and spec).

        ``engine`` is always part of the key: an explicit "ok" and a
        symbolic "unknown" are different answers to the same module.
        ``depth`` joins it only for the symbolic engine, where it bounds
        the search; for the explicit engine it cannot change the result
        and must not fragment the cache.
        """
        config: Dict[str, object] = {
            "invariants": list(self.invariants),
            "properties": list(self.properties),
            "max_states": self.max_states,
            "por": self.por,
            "compact": self.compact,
            "engine": self.engine,
        }
        if self.engine == "symbolic":
            from ..engine import DEFAULT_DEPTH

            config["depth"] = (self.depth if self.depth is not None
                               else DEFAULT_DEPTH)
        return config

    def fingerprint(self) -> str:
        return canonical_fingerprint(self.module_source, self.spec,
                                     self.semantic_config())


def graph_digest(graph) -> str:
    """A strong identity for an explored graph: SHA-256 sealing the
    streaming :class:`~repro.checker.digest.GraphDigest` (state
    fingerprints + BFS parent tree in node order, per-source successor
    lists in expansion order).  Two runs with equal digests produced
    bit-for-bit the same graph (hence the same traces) -- and because
    the compact engine maintains the same stream incrementally, a
    compact run and a full run of one spec yield the *same* digest."""
    own = getattr(graph, "digest", None)  # CompactGraph streams its own
    if own is not None:
        return own()
    return digest_of_graph(graph)


def _explore_for(request: CheckRequest, spec, stats: ExploreStats,
                 checkpoint: Optional[str], resume_from_checkpoint: bool,
                 reduction: Optional[ReductionConfig],
                 compact_active: bool, notes: List[str]):
    """Dispatch one exploration to the engine the request selected.

    A spec the packed codec cannot represent (unbounded values, huge
    domains) falls back to the full engine with a note -- the verdict,
    trace, and digest are identical by construction, so the fallback is
    sound and the job still completes.  The support probe runs *before*
    touching any checkpoint: the fallback decision is a pure function of
    the spec, so an interrupted fallen-back job resumes its full-engine
    checkpoint with the full engine rather than tripping the compact
    resume's cross-engine guard.
    """
    resuming = (resume_from_checkpoint and checkpoint is not None
                and os.path.exists(checkpoint))
    if compact_active:
        problem = packed.support_problem(spec)
        if problem is not None:
            compact_active = False
            notes.append(f"compact engine unavailable for this spec "
                         f"({problem}); ran the full engine")
    if compact_active:
        if resuming:
            return resume_compact(
                checkpoint, spec, workers=request.workers,
                max_states=request.max_states, stats=stats,
                checkpoint_every=request.checkpoint_every)
        return explore_compact(
            spec, max_states=request.max_states,
            workers=request.workers, stats=stats,
            checkpoint=checkpoint,
            checkpoint_every=request.checkpoint_every)
    if resuming:
        return resume(checkpoint, spec, workers=request.workers,
                      max_states=request.max_states, stats=stats,
                      checkpoint_every=request.checkpoint_every)
    return explore_parallel(
        spec, max_states=request.max_states, workers=request.workers,
        stats=stats, checkpoint=checkpoint,
        checkpoint_every=request.checkpoint_every,
        reduction=reduction)


def _symbolic_result(request: CheckRequest, spec, label: str,
                     inv_exprs, notes: List[str]) -> Optional[Dict[str, object]]:
    """Run a symbolic request to a result document, or ``None`` when the
    spec cannot be translated (the caller falls back to the explicit
    engine -- the note explaining why is already appended).

    The document's verdict is ``"violation"`` when any invariant has a
    counterexample within the bound, else ``"unknown"`` -- never
    ``"ok"``, because a bounded pass proves nothing about deeper states.
    There are no BFS levels, so symbolic jobs emit no ``level`` events
    and run to completion once started (cancellation takes effect only
    while queued).
    """
    from ..engine import (
        DEFAULT_DEPTH,
        VIOLATION,
        SolveStats,
        SymbolicEngine,
        SymbolicUnsupported,
    )

    depth = request.depth if request.depth is not None else DEFAULT_DEPTH
    engine = SymbolicEngine(depth=depth)
    stats = SolveStats()
    checks: List[Dict[str, object]] = []
    no_violation = True
    try:
        for name, expr in inv_exprs:
            res = engine.check_invariant(spec, expr, name=name, stats=stats)
            checks.append({
                "kind": "invariant",
                "name": res.name,
                "ok": res.ok,  # always False: VIOLATION or UNKNOWN
                "verdict": res.verdict,
                "summary": res.summary(),
                "counterexample": (
                    counterexample_to_portable(res.counterexample)
                    if res.counterexample is not None else None),
            })
            no_violation = no_violation and res.verdict != VIOLATION
    except SymbolicUnsupported as exc:
        notes.append(f"symbolic engine unavailable for this spec "
                     f"({exc}); ran the full explicit engine")
        return None
    return {
        "verdict": "unknown" if no_violation else "violation",
        "label": label, "checks": checks,
        "states": None, "edges": None, "stutter": None,
        "graph_digest": None, "notes": notes, "error": None,
        "engine": "symbolic", "depth": depth,
        "stats": stats.as_dict(),
    }


def _check_record(kind: str, res: CheckResult) -> Dict[str, object]:
    return {
        "kind": kind,
        "name": res.name,
        "ok": res.ok,
        "summary": res.summary(),
        "counterexample": (counterexample_to_portable(res.counterexample)
                           if res.counterexample is not None else None),
    }


def run_check(
    request: CheckRequest,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    resume_from_checkpoint: bool = False,
) -> Dict[str, object]:
    """Execute one check request to a result document (the unit the
    cache stores): explore (fresh, or resumed from *checkpoint* when
    *resume_from_checkpoint*), run every requested invariant and
    property, and summarise verdict + per-check counterexamples + stats
    + graph digest.  This is the service twin of ``repro check``; the
    POR semantics (auto-disable for properties, full re-exploration for
    the canonical trace on a reduced violation) match the CLI's.
    """
    module = load_module(request.module_source)
    spec = module.spec(request.spec)
    label = f"{module.name}!{request.spec}"
    if stats is None:
        stats = ExploreStats()
    inv_exprs = [(name, module.expr(name)) for name in request.invariants]
    notes: List[str] = []
    if request.engine == "symbolic":
        document = _symbolic_result(request, spec, label, inv_exprs, notes)
        if document is not None:
            return document
        # translation unsupported: fall through to the explicit engine
        # (the note saying so is already in ``notes``)
    por_active = request.por
    if request.por and request.properties:
        por_active = False
        notes.append("partial-order reduction disabled: temporal "
                     "properties need the full graph")
    compact_active = request.compact
    if request.compact and request.properties:
        # mirrors the POR precedent: lasso search walks successor lists
        # the compact engine does not retain
        compact_active = False
        notes.append("compact engine disabled: temporal properties need "
                     "the full state graph")
    if compact_active and por_active:
        por_active = False
        notes.append("partial-order reduction disabled: the compact "
                     "engine has no reduction machinery")
    reduction = None
    if por_active:
        observed = sorted({v for _name, expr in inv_exprs
                           for v in expr.free_vars()})
        reduction = ReductionConfig(tuple(observed))

    def base(verdict: str) -> Dict[str, object]:
        return {"verdict": verdict, "label": label, "checks": [],
                "states": None, "edges": None, "stutter": None,
                "graph_digest": None, "notes": notes, "error": None,
                "stats": stats.as_dict()}

    try:
        graph = _explore_for(request, spec, stats, checkpoint,
                             resume_from_checkpoint, reduction,
                             compact_active, notes)
    except StateSpaceExplosion as exc:
        result = base("explosion")
        result["error"] = str(exc)
        result["stats"] = stats.as_dict()
        return result

    if getattr(graph, "reduction_used", False) and any(
            not check_invariant(graph, expr, name=name).ok
            for name, expr in inv_exprs):
        # as in the CLI: re-explore the full graph so the reported trace
        # is the canonical POR-off counterexample
        notes.append("violation found under reduction; re-explored the "
                     "full graph for the canonical counterexample")
        graph.store.close()
        graph = explore_parallel(spec, max_states=request.max_states,
                                 workers=request.workers, stats=stats)
    ok = True
    checks: List[Dict[str, object]] = []
    run_invariant = (check_invariant_compact
                     if isinstance(graph, CompactGraph) else check_invariant)
    for name, expr in inv_exprs:
        res = run_invariant(graph, expr, name=name, run_stats=stats)
        checks.append(_check_record("invariant", res))
        ok = ok and res.ok
    for name in request.properties:
        res = check_temporal_implication(
            graph, module.formula(name), premises=premises_of_spec(spec),
            name=name, run_stats=stats)
        checks.append(_check_record("property", res))
        ok = ok and res.ok
    result = base("ok" if ok else "violation")
    result["checks"] = checks
    result["states"] = graph.state_count
    result["edges"] = graph.edge_count
    result["stutter"] = graph.stutter_count
    result["graph_digest"] = graph_digest(graph)
    result["stats"] = stats.as_dict()
    store = getattr(graph, "store", None)  # the compact engine has none
    if store is not None:
        store.close()
    return result


class Job:
    """One submission moving through the service's state machine."""

    def __init__(self, job_id: str, request: CheckRequest,
                 fingerprint: str, checkpoint_path: Optional[str] = None):
        self.id = job_id
        self.request = request
        self.fingerprint = fingerprint
        self.checkpoint_path = checkpoint_path
        self.state = "queued"
        self.cache_hit = False
        self.resume = False          # continue from checkpoint when run
        self.coalesced = 0           # extra submissions attached to this job
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, object]] = []
        self.cancel_requested = False
        self.interrupt_requested = False

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_STATES

    def emit(self, event: str, **fields: object) -> None:
        """Append one progress event (safe from the exploring thread:
        list appends are atomic and watchers only read by index)."""
        record: Dict[str, object] = {
            "event": event, "job": self.id, "seq": len(self.events),
            "t": round(time.time(), 4),
        }
        record.update(fields)
        self.events.append(record)

    def to_dict(self, with_request: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "resume": self.resume,
            "coalesced": self.coalesced,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "result": self.result,
            "error": self.error,
            "events": len(self.events),
        }
        if with_request:
            payload["request"] = self.request.to_dict()
        return payload


class JobManager:
    """Admit, queue, execute, cancel, persist, and resume check jobs.

    All public methods are called on the event-loop thread; the
    exploration itself runs on executor threads, reporting back only
    through the job's event list and the level-listener control flow.
    ``pool_size`` bounds concurrent explorations, ``queue_limit`` the
    jobs waiting in ``queued`` (admission control).
    """

    def __init__(self, state_dir: str, pool_size: int = 2,
                 queue_limit: int = 16):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.state_dir = os.path.abspath(state_dir)
        self.pool_size = pool_size
        self.queue_limit = queue_limit
        self.jobs_dir = os.path.join(self.state_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.cache = ResultCache(os.path.join(self.state_dir, "cache"))
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> live job id
        self._queue: Optional[asyncio.Queue] = None
        self._runners: List[asyncio.Task] = []
        self._accepting = False
        self._interrupting = False
        self._recent_runtimes: List[float] = []
        self.started_at = time.time()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Load persisted jobs (requeueing interrupted ones) and start
        the runner pool."""
        self._queue = asyncio.Queue()
        self._accepting = True
        self._interrupting = False
        self._recover()
        loop = asyncio.get_running_loop()
        self._runners = [loop.create_task(self._runner())
                         for _ in range(self.pool_size)]

    def _recover(self) -> None:
        """Reload ``jobs/*.json``; anything non-terminal goes back to the
        queue, resuming from its checkpoint when one survives."""
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as handle:
                    record = json.load(handle)
                job = self._job_from_record(record)
            except (OSError, ValueError, KeyError):
                continue  # torn or foreign file: not a job we can run
            self._jobs[job.id] = job
            if job.state in ("queued", "running"):
                job.state = "queued"
                job.resume = bool(job.checkpoint_path
                                  and os.path.exists(job.checkpoint_path))
                job.emit("requeued", resume=job.resume)
                self._inflight[job.fingerprint] = job.id
                self._persist(job)
                assert self._queue is not None
                self._queue.put_nowait(job.id)

    def _job_from_record(self, record: Dict[str, object]) -> Job:
        request = CheckRequest.from_dict(record["request"])
        job = Job(str(record["id"]), request, str(record["fingerprint"]),
                  checkpoint_path=record.get("checkpoint"))
        job.state = str(record["state"])
        job.cache_hit = bool(record.get("cache_hit", False))
        job.resume = bool(record.get("resume", False))
        job.coalesced = int(record.get("coalesced", 0))
        job.created = float(record.get("created", time.time()))
        job.started = record.get("started")
        job.finished = record.get("finished")
        job.result = record.get("result")
        job.error = record.get("error")
        events_path = self._events_path(job.id)
        if os.path.exists(events_path):
            with open(events_path) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        job.events.append(json.loads(line))
        return job

    async def shutdown(self) -> None:
        """Graceful drain: stop admissions, interrupt running jobs at
        their next level boundary (they fall back to ``queued`` with a
        checkpoint), keep queued jobs persisted, stop the runners."""
        self._accepting = False
        self._interrupting = True
        assert self._queue is not None
        for _ in self._runners:
            self._queue.put_nowait(None)
        if self._runners:
            await asyncio.gather(*self._runners, return_exceptions=True)
        self._runners = []

    # -- submission / querying ----------------------------------------------

    def submit(self, request: CheckRequest) -> Tuple[Job, str]:
        """Admit one request.  Returns ``(job, disposition)`` where
        disposition is ``"created"`` (fresh job queued), ``"cached"``
        (verdict served from the result cache; the job is born ``done``
        with ``cache_hit=True``), or ``"coalesced"`` (an identical job
        is already queued/running; the caller shares it).  Raises
        :class:`QueueFull` past the admission limit and ``ValueError``
        for requests that cannot parse/elaborate."""
        if not self._accepting:
            raise QueueFull(retry_after=self._retry_after())
        # eager validation: a module that cannot parse or a spec that
        # does not exist fails now (HTTP 400), not minutes later
        module = load_module(request.module_source)
        module.spec(request.spec)
        for name in tuple(request.invariants) + tuple(request.properties):
            module.get(name)

        fingerprint = request.fingerprint()
        live_id = self._inflight.get(fingerprint)
        if live_id is not None:
            live = self._jobs.get(live_id)
            if live is not None and not live.terminal:
                live.coalesced += 1
                return live, "coalesced"
        cached = self.cache.get(fingerprint)
        if cached is not None:
            job = self._new_job(request, fingerprint)
            job.cache_hit = True
            job.state = "done"
            job.finished = time.time()
            job.result = cached
            job.emit("done", verdict=cached.get("verdict"), cache_hit=True)
            self._jobs[job.id] = job
            self._persist(job)
            return job, "cached"
        if self._queued_count() >= self.queue_limit:
            raise QueueFull(retry_after=self._retry_after())
        job = self._new_job(request, fingerprint)
        job.emit("queued")
        self._jobs[job.id] = job
        self._inflight[fingerprint] = job.id
        self._persist(job)
        assert self._queue is not None
        self._queue.put_nowait(job.id)
        return job, "created"

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda job: job.created)

    def cancel(self, job_id: str) -> Tuple[Optional[Job], bool]:
        """Cancel a job: immediate for ``queued``, cooperative (next BFS
        level boundary) for ``running``.  Returns (job, accepted)."""
        job = self._jobs.get(job_id)
        if job is None:
            return None, False
        if job.state == "queued":
            job.state = "cancelled"
            job.finished = time.time()
            job.emit("cancelled", while_state="queued")
            self._inflight.pop(job.fingerprint, None)
            self._persist(job)
            return job, True
        if job.state == "running":
            job.cancel_requested = True
            job.emit("cancel_requested")
            return job, True
        return job, False

    def health(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return {
            "status": "ok" if self._accepting else "draining",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "pool_size": self.pool_size,
            "queue_limit": self.queue_limit,
            "queued": self._queued_count(),
            "jobs": counts,
            "cache": self.cache.counters(),
        }

    # -- internals -----------------------------------------------------------

    def _new_job(self, request: CheckRequest, fingerprint: str) -> Job:
        job_id = uuid.uuid4().hex[:12]
        return Job(job_id, request, fingerprint,
                   checkpoint_path=os.path.join(self.jobs_dir,
                                                job_id + ".ckpt"))

    def _queued_count(self) -> int:
        return sum(1 for job in self._jobs.values()
                   if job.state == "queued")

    def _retry_after(self) -> float:
        """Backpressure hint: roughly how long until a queue slot frees
        (queue depth x mean recent runtime / pool width)."""
        recent = self._recent_runtimes
        mean = (sum(recent) / len(recent)) if recent else 1.0
        estimate = self._queued_count() * mean / self.pool_size
        return round(max(1.0, estimate), 1)

    def _events_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id + ".events.ndjson")

    def _persist(self, job: Job) -> None:
        """Write the job record and its event log (atomic rename for the
        record, the durable source of truth across restarts)."""
        record = job.to_dict(with_request=True)
        record["checkpoint"] = job.checkpoint_path
        path = os.path.join(self.jobs_dir, job.id + ".json")
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(record, handle, separators=(",", ":"))
        os.replace(tmp, path)
        with open(self._events_path(job.id), "w") as handle:
            for event in list(job.events):
                handle.write(json.dumps(event, separators=(",", ":")) + "\n")

    async def _runner(self) -> None:
        """One pool slot: take queued jobs and execute them on a thread."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                return
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                continue  # cancelled while queued
            if self._interrupting:
                continue  # draining: stays queued and persisted
            job.state = "running"
            job.started = time.time()
            job.emit("started", resume=job.resume, workers=job.request.workers)
            self._persist(job)
            began = time.monotonic()
            try:
                result = await loop.run_in_executor(
                    None, self._execute, job)
            except JobCancelled:
                job.state = "cancelled"
                job.finished = time.time()
                job.emit("cancelled", while_state="running")
                self._inflight.pop(job.fingerprint, None)
                self._remove_checkpoint(job)
            except _JobInterrupted:
                # graceful shutdown: back to queued, checkpoint on disk;
                # the next manager on this state_dir resumes it
                job.state = "queued"
                job.resume = bool(job.checkpoint_path
                                  and os.path.exists(job.checkpoint_path))
                job.emit("interrupted", resume=job.resume)
            except Exception as exc:  # surface executor errors as verdicts
                job.state = "failed"
                job.finished = time.time()
                job.error = f"{type(exc).__name__}: {exc}"
                job.emit("failed", error=job.error)
                self._inflight.pop(job.fingerprint, None)
                self._remove_checkpoint(job)
            else:
                job.state = "done"
                job.finished = time.time()
                job.result = result
                if result.get("verdict") in _CACHEABLE_VERDICTS:
                    self.cache.put(job.fingerprint, result)
                self._recent_runtimes.append(time.monotonic() - began)
                del self._recent_runtimes[:-16]
                job.emit("done", verdict=result.get("verdict"),
                         cache_hit=False,
                         states=result.get("states"),
                         edges=result.get("edges"))
                self._inflight.pop(job.fingerprint, None)
                self._remove_checkpoint(job)
            self._persist(job)

    def _remove_checkpoint(self, job: Job) -> None:
        if not job.checkpoint_path:
            return
        try:
            os.unlink(job.checkpoint_path)
        except OSError:
            pass

    def _execute(self, job: Job) -> Dict[str, object]:
        """Thread body: run the check, streaming level events and
        honouring cancel/interrupt flags at level boundaries."""
        stats = ExploreStats()

        def on_level(level: int, row: Dict[str, int]) -> None:
            if job.cancel_requested:
                raise JobCancelled()
            if self._interrupting or job.interrupt_requested:
                raise _JobInterrupted()
            job.emit("level", level=level, **row)
            if job.request.level_delay:
                time.sleep(job.request.level_delay)

        stats.add_level_listener(on_level)
        return run_check(job.request, stats=stats,
                         checkpoint=job.checkpoint_path,
                         resume_from_checkpoint=job.resume)
