"""The checking service's job manager.

A :class:`JobManager` admits :class:`CheckRequest` submissions, runs
them on a bounded pool of explorer runs, and carries each through the
per-job state machine::

    queued -> running -> done | failed | cancelled

* **Admission control / backpressure** -- at most ``queue_limit`` jobs
  may sit in ``queued``; a submission beyond that raises
  :class:`QueueFull` carrying a retry-after hint derived from recent
  run times, which the HTTP layer turns into ``429 Retry-After``.
* **Content-addressed caching** -- a submission whose fingerprint (see
  :func:`repro.service.cache.canonical_fingerprint`) already has a
  cached result completes instantly with ``cache_hit=True`` and the
  cached verdict/trace/stats; a submission identical to a job currently
  queued or running is *coalesced* onto that job, so N clients
  submitting the same check cost one exploration.
* **Progress events** -- each job accumulates an append-only NDJSON
  event list (``queued``/``started``/``level``/``done``/...); the
  per-level rows come straight from the explorer through
  :meth:`repro.checker.stats.ExploreStats.add_level_listener`, so a
  watcher sees live frontier/state/edge counts.
* **Cancellation and graceful shutdown** -- both ride the same seam:
  the level listener raises inside the exploring thread at the next BFS
  level boundary.  A cancelled job ends ``cancelled``; an interrupted
  one (server shutdown) drops back to ``queued`` with its latest
  checkpoint on disk, is persisted, and a restarted manager resumes it
  bit-for-bit via :func:`repro.checker.checkpoint.resume` -- same
  verdict, same trace, same graph digest.
* **Multi-tenancy and fair dispatch** -- submissions carry a tenant
  name; :mod:`repro.service.scheduler` rate-limits and bounds each
  tenant and dispatches deficit-round-robin so no tenant starves the
  rest.  429s carry the rejected tenant's own Retry-After.
* **Durability and fleet awareness** -- every transition is appended to
  the :mod:`repro.service.journal` (so *queued* jobs survive SIGKILL,
  re-admitted exactly once even with N pre-forked sibling processes on
  one state dir) and mirrored into the :mod:`repro.service.metrics`
  registry (so ``GET /metrics`` reconciles with the journal:
  admitted == completed + failed + cancelled + in-flight).  Jobs owned
  by a sibling process are readable (and cancellable, via a flag file
  the owner polls at level boundaries) through the shared state dir.

Everything the manager needs to survive a restart lives under its
``state_dir``: ``jobs/<id>.json`` records, ``jobs/<id>.events.ndjson``
event logs, ``jobs/<id>.ckpt`` exploration checkpoints, ``journal/``
the durable queue, ``metrics/`` per-process metric snapshots, and
``cache/`` the sharded result store.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..checker import (
    CompactGraph,
    ExploreStats,
    ReductionConfig,
    check_invariant,
    check_invariant_compact,
    check_temporal_implication,
    digest_of_graph,
    explore_compact,
    explore_parallel,
    premises_of_spec,
    resume_compact,
)
from ..checker.checkpoint import counterexample_to_portable, resume
from ..checker.graph import StateGraph, StateSpaceExplosion
from ..checker.results import CheckResult
from ..kernel import packed
from ..parser import load_module
from .cache import ShardedResultCache, canonical_fingerprint
from .journal import JobJournal, owner_alive
from .metrics import MetricsDir, MetricsRegistry
from .scheduler import (
    DEFAULT_TENANT,
    FairScheduler,
    QueueFull,
    TenantPolicy,
    TenantThrottled,
    valid_tenant,
)

__all__ = [
    "CheckRequest",
    "Job",
    "JobManager",
    "QueueFull",
    "TenantThrottled",
    "JobCancelled",
    "run_check",
    "graph_digest",
    "valid_job_id",
    "MAX_MODULE_SOURCE",
]

# job ids are uuid4().hex[:12]; anything else arriving over the wire is
# at best a typo and at worst a path-traversal probe, since ids are
# joined into jobs/<id>.json / .events.ndjson / .cancel paths
_JOB_ID_RE = re.compile(r"[0-9a-f]{12}")

# module_source travels in every journal `submitted` line and is parsed
# synchronously at admission; bound it well below the HTTP body cap
MAX_MODULE_SOURCE = 1024 * 1024

# fold the journal once its log outgrows this: shutdown() compacts on a
# graceful drain, but a SIGKILLed or long-lived process never gets
# there, and the log must track the live job population, not uptime
JOURNAL_COMPACT_BYTES = 256 * 1024


def valid_job_id(job_id: object) -> bool:
    """True iff *job_id* has the exact shape the manager generates --
    the gate every disk path derived from a wire-supplied id goes
    through."""
    return isinstance(job_id, str) and _JOB_ID_RE.fullmatch(job_id) is not None

# verdicts that are pure functions of the request and therefore cacheable;
# "failed" (an exception) is deliberately not -- it may be environmental.
# "unknown" (symbolic, no violation within the bound) is a pure function
# of (module, invariants, depth) -- the depth is part of the cache key
_CACHEABLE_VERDICTS = ("ok", "violation", "explosion", "unknown")

_TERMINAL_STATES = ("done", "failed", "cancelled")


class JobCancelled(Exception):
    """Raised inside the exploring thread when the job was cancelled."""


class _JobInterrupted(Exception):
    """Raised inside the exploring thread on graceful server shutdown."""


@dataclass(frozen=True)
class CheckRequest:
    """One check submission: a module plus what to verify and how.

    ``module_source``/``spec``/``invariants``/``properties``/
    ``max_states``/``por``/``compact``/``engine``/``depth`` are
    *semantic* -- they address the result in the cache.  ``workers``,
    ``checkpoint_every``, and ``level_delay``
    are execution-only: the engine produces the identical graph and
    verdict for any value (``level_delay`` merely sleeps between BFS
    levels -- a pacing knob so demos and tests can watch or interrupt
    toy modules that would otherwise finish in microseconds).

    ``engine`` selects the checking engine: ``"explicit"`` (default)
    explores exhaustively; ``"symbolic"`` bounded-model-checks to
    ``depth`` steps (a clean run's verdict is ``"unknown"``, never
    ``"ok"``).  ``depth`` is only meaningful -- and only part of the
    cache key -- with the symbolic engine.
    """

    module_source: str
    spec: str = "Spec"
    invariants: Tuple[str, ...] = ()
    properties: Tuple[str, ...] = ()
    max_states: int = 200_000
    por: bool = False
    compact: bool = False
    workers: int = 1
    checkpoint_every: int = 1
    level_delay: float = 0.0
    engine: str = "explicit"
    depth: Optional[int] = None

    _FIELDS = ("module_source", "spec", "invariants", "properties",
               "max_states", "por", "compact", "workers",
               "checkpoint_every", "level_delay", "engine", "depth")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CheckRequest":
        """Validate and build a request from a JSON body; raises
        ``ValueError`` with a client-presentable message on bad input."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        module_source = payload.get("module_source")
        if not isinstance(module_source, str) or not module_source.strip():
            raise ValueError("module_source must be a non-empty string")
        if len(module_source) > MAX_MODULE_SOURCE:
            raise ValueError(
                f"module_source is {len(module_source)} characters; the "
                f"service accepts at most {MAX_MODULE_SOURCE}")
        spec = payload.get("spec", "Spec")
        if not isinstance(spec, str) or not spec:
            raise ValueError("spec must be a non-empty string")

        def names(key: str) -> Tuple[str, ...]:
            value = payload.get(key, ())
            if isinstance(value, str):
                value = (value,)
            if (not isinstance(value, (list, tuple))
                    or not all(isinstance(v, str) and v for v in value)):
                raise ValueError(f"{key} must be a list of definition names")
            return tuple(value)

        def bounded_int(key: str, default: int, minimum: int) -> int:
            value = payload.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(f"{key} must be an integer >= {minimum}")
            return value

        level_delay = payload.get("level_delay", 0.0)
        if not isinstance(level_delay, (int, float)) \
                or isinstance(level_delay, bool) or level_delay < 0 \
                or level_delay > 10:
            raise ValueError("level_delay must be a number in [0, 10]")
        por = payload.get("por", False)
        if not isinstance(por, bool):
            raise ValueError("por must be a boolean")
        compact = payload.get("compact", False)
        if not isinstance(compact, bool):
            raise ValueError("compact must be a boolean")
        if compact and por:
            raise ValueError("compact and por are mutually exclusive: the "
                             "compact engine has no reduction machinery")
        engine = payload.get("engine", "explicit")
        if engine not in ("explicit", "symbolic"):
            raise ValueError("engine must be 'explicit' or 'symbolic'")
        depth = payload.get("depth")
        if depth is not None and (not isinstance(depth, int)
                                  or isinstance(depth, bool) or depth < 1):
            raise ValueError("depth must be an integer >= 1")
        if depth is not None and engine != "symbolic":
            raise ValueError("depth is the symbolic unrolling bound; it "
                             "requires engine='symbolic'")
        if engine == "symbolic":
            for flag, active in (("por", por), ("compact", compact),
                                 ("properties", bool(names("properties")))):
                if active:
                    raise ValueError(
                        f"engine='symbolic' is incompatible with {flag}: "
                        f"bounded model checking never builds the state "
                        f"graph that option configures")
            if not names("invariants"):
                raise ValueError("engine='symbolic' needs at least one "
                                 "invariant to bound-check")
        return cls(
            module_source=module_source,
            spec=spec,
            invariants=names("invariants"),
            properties=names("properties"),
            max_states=bounded_int("max_states", 200_000, 1),
            por=por,
            compact=compact,
            workers=bounded_int("workers", 1, 0),
            checkpoint_every=bounded_int("checkpoint_every", 1, 1),
            level_delay=float(level_delay),
            engine=engine,
            depth=depth,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "module_source": self.module_source,
            "spec": self.spec,
            "invariants": list(self.invariants),
            "properties": list(self.properties),
            "max_states": self.max_states,
            "por": self.por,
            "compact": self.compact,
            "workers": self.workers,
            "checkpoint_every": self.checkpoint_every,
            "level_delay": self.level_delay,
            "engine": self.engine,
            "depth": self.depth,
        }

    def semantic_config(self) -> Dict[str, object]:
        """The slice of the request that can change the result -- the
        cache key covers exactly this (plus module source and spec).

        ``engine`` is always part of the key: an explicit "ok" and a
        symbolic "unknown" are different answers to the same module.
        ``depth`` joins it only for the symbolic engine, where it bounds
        the search; for the explicit engine it cannot change the result
        and must not fragment the cache.
        """
        config: Dict[str, object] = {
            "invariants": list(self.invariants),
            "properties": list(self.properties),
            "max_states": self.max_states,
            "por": self.por,
            "compact": self.compact,
            "engine": self.engine,
        }
        if self.engine == "symbolic":
            from ..engine import DEFAULT_DEPTH

            config["depth"] = (self.depth if self.depth is not None
                               else DEFAULT_DEPTH)
        return config

    def fingerprint(self) -> str:
        return canonical_fingerprint(self.module_source, self.spec,
                                     self.semantic_config())


def graph_digest(graph) -> str:
    """A strong identity for an explored graph: SHA-256 sealing the
    streaming :class:`~repro.checker.digest.GraphDigest` (state
    fingerprints + BFS parent tree in node order, per-source successor
    lists in expansion order).  Two runs with equal digests produced
    bit-for-bit the same graph (hence the same traces) -- and because
    the compact engine maintains the same stream incrementally, a
    compact run and a full run of one spec yield the *same* digest."""
    own = getattr(graph, "digest", None)  # CompactGraph streams its own
    if own is not None:
        return own()
    return digest_of_graph(graph)


def _explore_for(request: CheckRequest, spec, stats: ExploreStats,
                 checkpoint: Optional[str], resume_from_checkpoint: bool,
                 reduction: Optional[ReductionConfig],
                 compact_active: bool, notes: List[str]):
    """Dispatch one exploration to the engine the request selected.

    A spec the packed codec cannot represent (unbounded values, huge
    domains) falls back to the full engine with a note -- the verdict,
    trace, and digest are identical by construction, so the fallback is
    sound and the job still completes.  The support probe runs *before*
    touching any checkpoint: the fallback decision is a pure function of
    the spec, so an interrupted fallen-back job resumes its full-engine
    checkpoint with the full engine rather than tripping the compact
    resume's cross-engine guard.
    """
    resuming = (resume_from_checkpoint and checkpoint is not None
                and os.path.exists(checkpoint))
    if compact_active:
        problem = packed.support_problem(spec)
        if problem is not None:
            compact_active = False
            notes.append(f"compact engine unavailable for this spec "
                         f"({problem}); ran the full engine")
    if compact_active:
        if resuming:
            return resume_compact(
                checkpoint, spec, workers=request.workers,
                max_states=request.max_states, stats=stats,
                checkpoint_every=request.checkpoint_every)
        return explore_compact(
            spec, max_states=request.max_states,
            workers=request.workers, stats=stats,
            checkpoint=checkpoint,
            checkpoint_every=request.checkpoint_every)
    if resuming:
        return resume(checkpoint, spec, workers=request.workers,
                      max_states=request.max_states, stats=stats,
                      checkpoint_every=request.checkpoint_every)
    return explore_parallel(
        spec, max_states=request.max_states, workers=request.workers,
        stats=stats, checkpoint=checkpoint,
        checkpoint_every=request.checkpoint_every,
        reduction=reduction)


def _symbolic_result(request: CheckRequest, spec, label: str,
                     inv_exprs, notes: List[str]) -> Optional[Dict[str, object]]:
    """Run a symbolic request to a result document, or ``None`` when the
    spec cannot be translated (the caller falls back to the explicit
    engine -- the note explaining why is already appended).

    The document's verdict is ``"violation"`` when any invariant has a
    counterexample within the bound, else ``"unknown"`` -- never
    ``"ok"``, because a bounded pass proves nothing about deeper states.
    There are no BFS levels, so symbolic jobs emit no ``level`` events
    and run to completion once started (cancellation takes effect only
    while queued).
    """
    from ..engine import (
        DEFAULT_DEPTH,
        VIOLATION,
        SolveStats,
        SymbolicEngine,
        SymbolicUnsupported,
    )

    depth = request.depth if request.depth is not None else DEFAULT_DEPTH
    engine = SymbolicEngine(depth=depth)
    stats = SolveStats()
    checks: List[Dict[str, object]] = []
    no_violation = True
    try:
        for name, expr in inv_exprs:
            res = engine.check_invariant(spec, expr, name=name, stats=stats)
            checks.append({
                "kind": "invariant",
                "name": res.name,
                "ok": res.ok,  # always False: VIOLATION or UNKNOWN
                "verdict": res.verdict,
                "summary": res.summary(),
                "counterexample": (
                    counterexample_to_portable(res.counterexample)
                    if res.counterexample is not None else None),
            })
            no_violation = no_violation and res.verdict != VIOLATION
    except SymbolicUnsupported as exc:
        notes.append(f"symbolic engine unavailable for this spec "
                     f"({exc}); ran the full explicit engine")
        return None
    return {
        "verdict": "unknown" if no_violation else "violation",
        "label": label, "checks": checks,
        "states": None, "edges": None, "stutter": None,
        "graph_digest": None, "notes": notes, "error": None,
        "engine": "symbolic", "depth": depth,
        "stats": stats.as_dict(),
    }


def _check_record(kind: str, res: CheckResult) -> Dict[str, object]:
    return {
        "kind": kind,
        "name": res.name,
        "ok": res.ok,
        "summary": res.summary(),
        "counterexample": (counterexample_to_portable(res.counterexample)
                           if res.counterexample is not None else None),
    }


def run_check(
    request: CheckRequest,
    stats: Optional[ExploreStats] = None,
    checkpoint: Optional[str] = None,
    resume_from_checkpoint: bool = False,
) -> Dict[str, object]:
    """Execute one check request to a result document (the unit the
    cache stores): explore (fresh, or resumed from *checkpoint* when
    *resume_from_checkpoint*), run every requested invariant and
    property, and summarise verdict + per-check counterexamples + stats
    + graph digest.  This is the service twin of ``repro check``; the
    POR semantics (auto-disable for properties, full re-exploration for
    the canonical trace on a reduced violation) match the CLI's.
    """
    module = load_module(request.module_source)
    spec = module.spec(request.spec)
    label = f"{module.name}!{request.spec}"
    if stats is None:
        stats = ExploreStats()
    inv_exprs = [(name, module.expr(name)) for name in request.invariants]
    notes: List[str] = []
    if request.engine == "symbolic":
        document = _symbolic_result(request, spec, label, inv_exprs, notes)
        if document is not None:
            return document
        # translation unsupported: fall through to the explicit engine
        # (the note saying so is already in ``notes``)
    por_active = request.por
    if request.por and request.properties:
        por_active = False
        notes.append("partial-order reduction disabled: temporal "
                     "properties need the full graph")
    compact_active = request.compact
    if request.compact and request.properties:
        # mirrors the POR precedent: lasso search walks successor lists
        # the compact engine does not retain
        compact_active = False
        notes.append("compact engine disabled: temporal properties need "
                     "the full state graph")
    if compact_active and por_active:
        por_active = False
        notes.append("partial-order reduction disabled: the compact "
                     "engine has no reduction machinery")
    reduction = None
    if por_active:
        observed = sorted({v for _name, expr in inv_exprs
                           for v in expr.free_vars()})
        reduction = ReductionConfig(tuple(observed))

    def base(verdict: str) -> Dict[str, object]:
        return {"verdict": verdict, "label": label, "checks": [],
                "states": None, "edges": None, "stutter": None,
                "graph_digest": None, "notes": notes, "error": None,
                "stats": stats.as_dict()}

    try:
        graph = _explore_for(request, spec, stats, checkpoint,
                             resume_from_checkpoint, reduction,
                             compact_active, notes)
    except StateSpaceExplosion as exc:
        result = base("explosion")
        result["error"] = str(exc)
        result["stats"] = stats.as_dict()
        return result

    if getattr(graph, "reduction_used", False) and any(
            not check_invariant(graph, expr, name=name).ok
            for name, expr in inv_exprs):
        # as in the CLI: re-explore the full graph so the reported trace
        # is the canonical POR-off counterexample
        notes.append("violation found under reduction; re-explored the "
                     "full graph for the canonical counterexample")
        graph.store.close()
        graph = explore_parallel(spec, max_states=request.max_states,
                                 workers=request.workers, stats=stats)
    ok = True
    checks: List[Dict[str, object]] = []
    run_invariant = (check_invariant_compact
                     if isinstance(graph, CompactGraph) else check_invariant)
    for name, expr in inv_exprs:
        res = run_invariant(graph, expr, name=name, run_stats=stats)
        checks.append(_check_record("invariant", res))
        ok = ok and res.ok
    for name in request.properties:
        res = check_temporal_implication(
            graph, module.formula(name), premises=premises_of_spec(spec),
            name=name, run_stats=stats)
        checks.append(_check_record("property", res))
        ok = ok and res.ok
    result = base("ok" if ok else "violation")
    result["checks"] = checks
    result["states"] = graph.state_count
    result["edges"] = graph.edge_count
    result["stutter"] = graph.stutter_count
    result["graph_digest"] = graph_digest(graph)
    result["stats"] = stats.as_dict()
    store = getattr(graph, "store", None)  # the compact engine has none
    if store is not None:
        store.close()
    return result


class Job:
    """One submission moving through the service's state machine."""

    def __init__(self, job_id: str, request: CheckRequest,
                 fingerprint: str, checkpoint_path: Optional[str] = None,
                 tenant: str = DEFAULT_TENANT):
        self.id = job_id
        self.request = request
        self.fingerprint = fingerprint
        self.checkpoint_path = checkpoint_path
        self.tenant = tenant
        self.state = "queued"
        self.cache_hit = False
        self.resume = False          # continue from checkpoint when run
        self.coalesced = 0           # extra submissions attached to this job
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, object]] = []
        self.cancel_requested = False
        self.interrupt_requested = False
        # the manager wires this to an append into <id>.events.ndjson so
        # watchers in sibling processes can follow the stream live
        self.event_sink = None

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_STATES

    def emit(self, event: str, **fields: object) -> None:
        """Append one progress event (safe from the exploring thread:
        list appends are atomic and watchers only read by index)."""
        record: Dict[str, object] = {
            "event": event, "job": self.id, "seq": len(self.events),
            "t": round(time.time(), 4),
        }
        record.update(fields)
        self.events.append(record)
        if self.event_sink is not None:
            self.event_sink(record)

    def to_dict(self, with_request: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "resume": self.resume,
            "coalesced": self.coalesced,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "result": self.result,
            "error": self.error,
            "events": len(self.events),
        }
        if with_request:
            payload["request"] = self.request.to_dict()
        return payload


class JobManager:
    """Admit, queue, execute, cancel, persist, and resume check jobs.

    All public methods are called on the event-loop thread; the
    exploration itself runs on executor threads, reporting back only
    through the job's event list and the level-listener control flow.
    ``pool_size`` bounds concurrent explorations, ``queue_limit`` the
    jobs waiting in ``queued`` (global admission control), and
    ``tenant_policy`` the per-tenant quotas and rates enforced within
    it.  Dispatch is deficit-round-robin across tenants.

    The manager is fleet-aware: N processes (``repro serve --procs N``)
    may each run one manager over a shared ``state_dir``.  The journal
    arbitrates job ownership (exactly-once re-admission after SIGKILL),
    the metrics directory merges per-process snapshots for a fleet-wide
    ``/metrics``, the sharded cache serialises eviction per shard, and
    jobs owned by a sibling stay readable -- and cancellable, via a flag
    file the owner polls at level boundaries -- through the shared
    files (:meth:`job_record`, :meth:`job_events`, :meth:`cancel_any`).
    """

    def __init__(self, state_dir: str, pool_size: int = 2,
                 queue_limit: int = 16,
                 tenant_policy: Optional[TenantPolicy] = None,
                 cache_max_entries: Optional[int] = 4096,
                 cache_max_bytes: Optional[int] = None):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.state_dir = os.path.abspath(state_dir)
        self.pool_size = pool_size
        self.queue_limit = queue_limit
        self.jobs_dir = os.path.join(self.state_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.journal = JobJournal(os.path.join(self.state_dir, "journal"))
        self.registry = MetricsRegistry()
        self.metrics_dir = MetricsDir(
            os.path.join(self.state_dir, "metrics"), self.registry)
        self._init_metrics()
        self.cache = ShardedResultCache(
            os.path.join(self.state_dir, "cache"),
            max_entries=cache_max_entries, max_bytes=cache_max_bytes,
            on_event=self._cache_event)
        self.scheduler = FairScheduler(tenant_policy)
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> live job id
        self._wake: Optional[asyncio.Event] = None
        self._runners: List[asyncio.Task] = []
        self._accepting = False
        self._interrupting = False
        self._stopping = False
        self._compacting = False
        self._recent_runtimes: List[float] = []
        self.started_at = time.time()

    def _init_metrics(self) -> None:
        reg = self.registry
        self._m_admitted = reg.counter(
            "repro_jobs_admitted_total",
            "Submissions admitted (queued, or served from cache)",
            ("tenant",))
        self._m_completed = reg.counter(
            "repro_jobs_completed_total",
            "Jobs finished with a verdict", ("tenant", "verdict"))
        self._m_failed = reg.counter(
            "repro_jobs_failed_total",
            "Jobs that raised instead of producing a verdict", ("tenant",))
        self._m_cancelled = reg.counter(
            "repro_jobs_cancelled_total", "Jobs cancelled", ("tenant",))
        self._m_rejected = reg.counter(
            "repro_jobs_rejected_total",
            "Submissions rejected with 429", ("tenant", "reason"))
        self._m_coalesced = reg.counter(
            "repro_jobs_coalesced_total",
            "Submissions coalesced onto an identical live job", ("tenant",))
        self._m_engine = reg.counter(
            "repro_engine_jobs_total", "Completed jobs per engine",
            ("engine",))
        self._m_cache = {
            kind: reg.counter(f"repro_cache_{kind}_total",
                              f"Result cache {kind}")
            for kind in ("hits", "misses", "evictions")}
        self._m_queue_depth = reg.gauge(
            "repro_queue_depth", "Jobs waiting in the queue")
        self._m_running = reg.gauge(
            "repro_jobs_running", "Jobs currently executing")
        self._m_latency = reg.histogram(
            "repro_job_latency_seconds",
            "Submit-to-finish latency per tenant", ("tenant",))

    def _cache_event(self, kind: str, amount: int) -> None:
        self._m_cache[kind].default.inc(amount)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Load persisted jobs (claiming orphaned ones through the
        journal, exactly once across sibling processes) and start the
        runner pool."""
        self._wake = asyncio.Event()
        self._accepting = True
        self._interrupting = False
        self._stopping = False
        self._recover()
        self._set_gauges()
        self._flush_metrics()
        loop = asyncio.get_running_loop()
        self._runners = [loop.create_task(self._runner())
                         for _ in range(self.pool_size)]

    def _recover(self) -> None:
        """Reload persisted jobs under the journal lock.

        ``jobs/*.json`` records are authoritative for job content; the
        journal fold is authoritative for *ownership*.  A non-terminal
        job whose journal owner is a live sibling process is left alone
        (it is that sibling's to run); one whose owner is dead -- or is
        this very process, restarting in place -- is claimed by
        appending a ``claimed`` record while still holding the lock, so
        exactly one recovering process re-admits it.  Jobs that exist
        only in the journal (the owner died between the ``submitted``
        append and its first record write) are rebuilt from the request
        stored in the journal line itself."""
        with self.journal.lock():
            folded = self.journal.replay()
            own = os.getpid()

            def foreign(entry: Optional[Dict[str, object]]) -> bool:
                if entry is None:
                    return False
                owner = entry.get("owner")
                return owner != own and owner_alive(
                    owner, entry.get("owner_start"))

            for name in sorted(os.listdir(self.jobs_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.jobs_dir, name)
                try:
                    with open(path) as handle:
                        record = json.load(handle)
                    job = self._job_from_record(record)
                except (OSError, ValueError, KeyError):
                    continue  # torn or foreign file: not a job we can run
                if not job.terminal and foreign(folded.get(job.id)):
                    continue  # a live sibling owns it
                self._jobs[job.id] = job
                if job.state in ("queued", "running"):
                    job.state = "queued"
                    job.resume = bool(job.checkpoint_path
                                      and os.path.exists(job.checkpoint_path))
                    job.emit("requeued", resume=job.resume)
                    self.journal.append_locked("claimed", job.id,
                                               tenant=job.tenant)
                    self._inflight[job.fingerprint] = job.id
                    self._persist(job)
                    self.scheduler.push(job.tenant, job.id)
            for job_id, entry in sorted(folded.items()):
                if (not valid_job_id(job_id)
                        or job_id in self._jobs
                        or entry.get("state") not in ("queued", "running")
                        or foreign(entry)
                        or not isinstance(entry.get("request"), dict)):
                    continue
                try:
                    request = CheckRequest.from_dict(entry["request"])
                except ValueError:
                    continue
                tenant = entry.get("tenant") or DEFAULT_TENANT
                job = Job(job_id, request,
                          entry.get("fingerprint") or request.fingerprint(),
                          checkpoint_path=os.path.join(
                              self.jobs_dir, job_id + ".ckpt"),
                          tenant=tenant)
                self._wire_sink(job)
                job.resume = os.path.exists(job.checkpoint_path)
                job.emit("requeued", resume=job.resume, source="journal")
                self.journal.append_locked("claimed", job_id, tenant=tenant)
                self._jobs[job_id] = job
                self._inflight[job.fingerprint] = job.id
                self._persist(job)
                self.scheduler.push(tenant, job_id)

    def _job_from_record(self, record: Dict[str, object]) -> Job:
        request = CheckRequest.from_dict(record["request"])
        job = Job(str(record["id"]), request, str(record["fingerprint"]),
                  checkpoint_path=record.get("checkpoint"),
                  tenant=str(record.get("tenant") or DEFAULT_TENANT))
        job.state = str(record["state"])
        job.cache_hit = bool(record.get("cache_hit", False))
        job.resume = bool(record.get("resume", False))
        job.coalesced = int(record.get("coalesced", 0))
        job.created = float(record.get("created", time.time()))
        job.started = record.get("started")
        job.finished = record.get("finished")
        job.result = record.get("result")
        job.error = record.get("error")
        events_path = self._events_path(job.id)
        if os.path.exists(events_path):
            with open(events_path) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        job.events.append(json.loads(line))
        self._wire_sink(job)
        return job

    async def shutdown(self) -> None:
        """Graceful drain: stop admissions, interrupt running jobs at
        their next level boundary (they fall back to ``queued`` with a
        checkpoint), keep queued jobs persisted, stop the runners, and
        compact the journal with a final metrics snapshot (the service's
        run manifest)."""
        self._accepting = False
        self._interrupting = True
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if self._runners:
            await asyncio.gather(*self._runners, return_exceptions=True)
        self._runners = []
        self._set_gauges()
        try:
            self._flush_metrics()
            self.journal.compact(
                extra={"metrics": self.registry.snapshot()})
        except OSError:  # pragma: no cover - a full disk must not wedge
            pass

    # -- submission / querying ----------------------------------------------

    def validate_request(self, request: CheckRequest) -> None:
        """Eager validation: a module that cannot parse or a spec that
        does not exist fails now (HTTP 400), not minutes later.  Pure
        CPU on the request alone, so the HTTP layer runs it on an
        executor thread -- a pathological module must not stall the
        event loop every other connection shares."""
        module = load_module(request.module_source)
        module.spec(request.spec)
        for name in tuple(request.invariants) + tuple(request.properties):
            module.get(name)

    def submit(self, request: CheckRequest,
               tenant: str = DEFAULT_TENANT,
               prevalidated: bool = False) -> Tuple[Job, str]:
        """Admit one request for *tenant*.  Returns ``(job, disposition)``
        where disposition is ``"created"`` (fresh job queued),
        ``"cached"`` (verdict served from the result cache; the job is
        born ``done`` with ``cache_hit=True``), or ``"coalesced"`` (an
        identical job is already queued/running; the caller shares it).
        Raises :class:`QueueFull` past the shared admission limit,
        :class:`TenantThrottled` past the tenant's own rate/bounds (cache
        hits and coalesced submissions are never charged -- they queue
        nothing), and ``ValueError`` for requests that cannot
        parse/elaborate.  *prevalidated* skips the parse/elaborate pass
        for callers that already ran :meth:`validate_request` (the HTTP
        layer does, off the event loop)."""
        if not valid_tenant(tenant):
            raise ValueError(
                "tenant must be 1-64 characters of [A-Za-z0-9._-]")
        if not self._accepting:
            self._m_rejected.labels(tenant=tenant, reason="draining").inc()
            raise QueueFull(retry_after=self._retry_after())
        if not prevalidated:
            self.validate_request(request)

        fingerprint = request.fingerprint()
        live_id = self._inflight.get(fingerprint)
        if live_id is not None:
            live = self._jobs.get(live_id)
            if live is not None and not live.terminal:
                live.coalesced += 1
                self._m_coalesced.labels(tenant=tenant).inc()
                return live, "coalesced"
        cached = self.cache.get(fingerprint)
        if cached is not None:
            job = self._new_job(request, fingerprint, tenant)
            job.cache_hit = True
            job.state = "done"
            job.finished = time.time()
            job.result = cached
            job.emit("done", verdict=cached.get("verdict"), cache_hit=True)
            self._jobs[job.id] = job
            self._persist(job)
            verdict = str(cached.get("verdict"))
            self._m_admitted.labels(tenant=tenant).inc()
            self._m_completed.labels(tenant=tenant, verdict=verdict).inc()
            self._m_latency.labels(tenant=tenant).observe(
                job.finished - job.created)
            with self.journal.lock():
                # both lines under one lock: the journal never shows a
                # cache-served job as admitted-but-unaccounted
                self.journal.append_locked(
                    "submitted", job.id, tenant=tenant,
                    fingerprint=fingerprint, cached=True)
                self.journal.append_locked("done", job.id, verdict=verdict)
            self._flush_metrics()
            return job, "cached"
        if self._queued_count() >= self.queue_limit:
            self._m_rejected.labels(tenant=tenant,
                                    reason="queue_full").inc()
            raise QueueFull(retry_after=self._retry_after())
        try:
            self.scheduler.admit(tenant)
        except TenantThrottled as exc:
            self._m_rejected.labels(tenant=tenant, reason=exc.reason).inc()
            raise
        job = self._new_job(request, fingerprint, tenant)
        job.emit("queued", tenant=tenant)
        self._jobs[job.id] = job
        self._inflight[fingerprint] = job.id
        self._m_admitted.labels(tenant=tenant).inc()
        self.journal.append("submitted", job.id, tenant=tenant,
                            fingerprint=fingerprint,
                            request=request.to_dict())
        self._persist(job)
        self.scheduler.push(tenant, job.id)
        self._set_gauges()
        self._flush_metrics()
        if self._wake is not None:
            self._wake.set()
        return job, "created"

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda job: job.created)

    def cancel(self, job_id: str) -> Tuple[Optional[Job], bool]:
        """Cancel a job this process owns: immediate for ``queued``,
        cooperative (next BFS level boundary) for ``running``.  Returns
        (job, accepted)."""
        job = self._jobs.get(job_id)
        if job is None:
            return None, False
        if job.state == "queued":
            job.state = "cancelled"
            job.finished = time.time()
            job.emit("cancelled", while_state="queued")
            self._inflight.pop(job.fingerprint, None)
            self.scheduler.forget(job.tenant, job.id)
            self.journal.append("cancelled", job.id, tenant=job.tenant)
            self._m_cancelled.labels(tenant=job.tenant).inc()
            self._persist(job)
            self._set_gauges()
            self._flush_metrics()
            return job, True
        if job.state == "running":
            job.cancel_requested = True
            job.emit("cancel_requested")
            return job, True
        return job, False

    def health(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return {
            "status": "ok" if self._accepting else "draining",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "pid": os.getpid(),
            "pool_size": self.pool_size,
            "queue_limit": self.queue_limit,
            "queued": self._queued_count(),
            "jobs": counts,
            "cache": self.cache.counters(),
            "tenants": len(self.scheduler.tenants_view()),
            "journal_bytes": self.journal.log_size(),
        }

    def tenants(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant scheduler state for ``GET /tenants``."""
        return self.scheduler.tenants_view()

    def metrics_text(self) -> str:
        """The fleet-wide Prometheus exposition for ``GET /metrics``."""
        self._set_gauges()
        return self.metrics_dir.render()

    # -- cross-process views (jobs owned by sibling processes) ---------------

    def job_record(self, job_id: str) -> Optional[Dict[str, object]]:
        """This job's wire record, whether we own it or a sibling
        process on the same state dir does (disk read-through)."""
        job = self._jobs.get(job_id)
        if job is not None:
            return job.to_dict()
        return self._disk_record(job_id)

    def job_events(self, job_id: str,
                   start: int = 0) -> Optional[List[Dict[str, object]]]:
        """Events from *start*, served from memory for owned jobs and
        from the append-only events file for a sibling's."""
        job = self._jobs.get(job_id)
        if job is not None:
            return job.events[start:]
        if self._disk_record(job_id) is None:
            return None
        events: List[Dict[str, object]] = []
        try:
            with open(self._events_path(job_id)) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        try:
                            events.append(json.loads(line))
                        except ValueError:
                            continue  # torn tail of a concurrent append
        except OSError:
            pass
        return events[start:]

    def list_records(self) -> List[Dict[str, object]]:
        """Every job on the state dir: ours from memory, siblings' from
        their persisted records."""
        records = {job.id: job.to_dict() for job in self._jobs.values()}
        try:
            names = sorted(os.listdir(self.jobs_dir))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            job_id = name[: -len(".json")]
            if job_id in records:
                continue
            record = self._disk_record(job_id)
            if record is not None:
                records[job_id] = record
        return sorted(records.values(),
                      key=lambda r: (r.get("created") or 0, r.get("id", "")))

    def cancel_any(self, job_id: str
                   ) -> Tuple[Optional[Dict[str, object]], bool]:
        """Cancel a job wherever it lives: directly when owned, via a
        ``jobs/<id>.cancel`` flag file -- polled by the owner at its next
        level boundary, and before it starts a queued job -- when a
        sibling owns it."""
        job, accepted = self.cancel(job_id)
        if job is not None:
            return job.to_dict(), accepted
        record = self._disk_record(job_id)
        if record is None:
            return None, False
        if record.get("state") in ("queued", "running"):
            try:
                with open(self._cancel_flag_path(job_id), "w") as handle:
                    handle.write(str(round(time.time(), 4)))
            except OSError:
                return record, False
            return record, True
        return record, False

    def _disk_record(self, job_id: str) -> Optional[Dict[str, object]]:
        if not valid_job_id(job_id):
            # ids are joined into paths below: reject anything that is
            # not literally a generated id (e.g. "../../../etc/passwd")
            return None
        path = os.path.join(self.jobs_dir, job_id + ".json")
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        record.pop("request", None)   # wire shape of Job.to_dict()
        record.pop("checkpoint", None)
        return record

    # -- internals -----------------------------------------------------------

    def _new_job(self, request: CheckRequest, fingerprint: str,
                 tenant: str = DEFAULT_TENANT) -> Job:
        job_id = uuid.uuid4().hex[:12]
        job = Job(job_id, request, fingerprint,
                  checkpoint_path=os.path.join(self.jobs_dir,
                                               job_id + ".ckpt"),
                  tenant=tenant)
        self._wire_sink(job)
        return job

    def _wire_sink(self, job: Job) -> None:
        """Events append to ``jobs/<id>.events.ndjson`` as they happen,
        so a sibling process's watcher follows the stream live."""
        path = self._events_path(job.id)

        def sink(record: Dict[str, object]) -> None:
            try:
                with open(path, "a") as handle:
                    handle.write(
                        json.dumps(record, separators=(",", ":")) + "\n")
            except OSError:  # pragma: no cover - events are best-effort
                pass

        job.event_sink = sink

    def _queued_count(self) -> int:
        return sum(1 for job in self._jobs.values()
                   if job.state == "queued")

    def _running_count(self) -> int:
        return sum(1 for job in self._jobs.values()
                   if job.state == "running")

    def _retry_after(self) -> float:
        """Backpressure hint: roughly how long until a queue slot frees
        (queue depth x mean recent runtime / pool width)."""
        recent = self._recent_runtimes
        mean = (sum(recent) / len(recent)) if recent else 1.0
        estimate = self._queued_count() * mean / self.pool_size
        return round(max(1.0, estimate), 1)

    def _set_gauges(self) -> None:
        self._m_queue_depth.default.set(self._queued_count())
        self._m_running.default.set(self._running_count())

    def _flush_metrics(self) -> None:
        try:
            self.metrics_dir.flush()
        except OSError:  # pragma: no cover - a full disk must not wedge
            pass

    def _events_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id + ".events.ndjson")

    def _cancel_flag_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id + ".cancel")

    def _cancel_flagged(self, job: Job) -> bool:
        return os.path.exists(self._cancel_flag_path(job.id))

    def _persist(self, job: Job) -> None:
        """Write the job record atomically (the durable source of truth
        across restarts; events append separately as they are emitted)."""
        record = job.to_dict(with_request=True)
        record["checkpoint"] = job.checkpoint_path
        path = os.path.join(self.jobs_dir, job.id + ".json")
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(record, handle, separators=(",", ":"))
        os.replace(tmp, path)

    async def _next_job(self) -> Optional[Tuple[str, str]]:
        """The next (tenant, job_id) the DRR scheduler dispatches, or
        ``None`` when the manager is stopping.  Waits when nothing is
        dispatchable (empty queues, or every queued tenant at its
        in-flight cap)."""
        assert self._wake is not None
        while True:
            if self._stopping:
                return None
            self._wake.clear()
            item = self.scheduler.pop()
            if item is not None:
                return item
            await self._wake.wait()

    async def _runner(self) -> None:
        """One pool slot: take scheduled jobs and execute them on a
        thread, journaling and mirroring every transition to metrics."""
        loop = asyncio.get_running_loop()
        while True:
            item = await self._next_job()
            if item is None:
                return
            tenant, job_id = item
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued" or self._interrupting:
                # cancelled while queued, or draining (stays persisted)
                self.scheduler.release(tenant, completed=False)
                continue
            if self._cancel_flagged(job):
                # a sibling process flagged this job before we started it
                job.cancel_requested = True
                job.state = "cancelled"
                job.finished = time.time()
                job.emit("cancelled", while_state="queued", via="flag")
                self._inflight.pop(job.fingerprint, None)
                self.journal.append("cancelled", job.id, tenant=tenant)
                self._m_cancelled.labels(tenant=tenant).inc()
                self.scheduler.release(tenant, completed=False)
                self._finish(job)
                continue
            job.state = "running"
            job.started = time.time()
            job.emit("started", resume=job.resume,
                     workers=job.request.workers)
            self.journal.append("started", job.id, tenant=tenant)
            self._persist(job)
            self._set_gauges()
            self._flush_metrics()
            began = time.monotonic()
            try:
                result = await loop.run_in_executor(
                    None, self._execute, job)
            except JobCancelled:
                job.state = "cancelled"
                job.finished = time.time()
                job.emit("cancelled", while_state="running")
                self._inflight.pop(job.fingerprint, None)
                self._remove_checkpoint(job)
                self.journal.append("cancelled", job.id, tenant=tenant)
                self._m_cancelled.labels(tenant=tenant).inc()
                self.scheduler.release(tenant, completed=False)
            except _JobInterrupted:
                # graceful shutdown: back to queued, checkpoint on disk;
                # the next manager on this state_dir resumes it
                job.state = "queued"
                job.resume = bool(job.checkpoint_path
                                  and os.path.exists(job.checkpoint_path))
                job.emit("interrupted", resume=job.resume)
                self.journal.append("requeued", job.id, tenant=tenant)
                self.scheduler.release(tenant, completed=False)
            except Exception as exc:  # surface executor errors as verdicts
                job.state = "failed"
                job.finished = time.time()
                job.error = f"{type(exc).__name__}: {exc}"
                job.emit("failed", error=job.error)
                self._inflight.pop(job.fingerprint, None)
                self._remove_checkpoint(job)
                self.journal.append("failed", job.id, tenant=tenant,
                                    error=job.error)
                self._m_failed.labels(tenant=tenant).inc()
                self._m_latency.labels(tenant=tenant).observe(
                    job.finished - job.created)
                self.scheduler.release(tenant, completed=False)
            else:
                job.state = "done"
                job.finished = time.time()
                job.result = result
                verdict = result.get("verdict")
                if verdict in _CACHEABLE_VERDICTS:
                    self.cache.put(job.fingerprint, result)
                self._recent_runtimes.append(time.monotonic() - began)
                del self._recent_runtimes[:-16]
                job.emit("done", verdict=verdict,
                         cache_hit=False,
                         states=result.get("states"),
                         edges=result.get("edges"))
                self._inflight.pop(job.fingerprint, None)
                self._remove_checkpoint(job)
                self.journal.append("done", job.id, tenant=tenant,
                                    verdict=verdict)
                self._m_completed.labels(tenant=tenant,
                                         verdict=str(verdict)).inc()
                self._m_engine.labels(
                    engine=result.get("engine", "explicit")).inc()
                self._m_latency.labels(tenant=tenant).observe(
                    job.finished - job.created)
                self.scheduler.release(tenant, completed=True)
            self._finish(job)

    def _finish(self, job: Job) -> None:
        """Persist a transition and wake dispatchers (a release may have
        unblocked a tenant at its in-flight cap)."""
        self._persist(job)
        if job.terminal:
            try:
                os.unlink(self._cancel_flag_path(job.id))
            except OSError:
                pass
        self._set_gauges()
        self._flush_metrics()
        self._maybe_compact_journal()
        if self._wake is not None:
            self._wake.set()

    def _maybe_compact_journal(self) -> None:
        """Fold the journal on an executor thread once its log passes
        :data:`JOURNAL_COMPACT_BYTES`.  shutdown() compacts on graceful
        drains, but a process that dies by SIGKILL -- the very scenario
        the journal exists for -- or simply runs for weeks would
        otherwise grow the log without bound."""
        if (self._stopping or self._compacting
                or self.journal.log_size() < JOURNAL_COMPACT_BYTES):
            return
        self._compacting = True

        def work() -> None:
            try:
                self.journal.compact(
                    extra={"metrics": self.registry.snapshot()})
            except OSError:  # a full disk must not wedge the runner
                pass

        future = asyncio.get_running_loop().run_in_executor(None, work)
        future.add_done_callback(
            lambda _f: setattr(self, "_compacting", False))

    def _remove_checkpoint(self, job: Job) -> None:
        if not job.checkpoint_path:
            return
        try:
            os.unlink(job.checkpoint_path)
        except OSError:
            pass

    def _execute(self, job: Job) -> Dict[str, object]:
        """Thread body: run the check, streaming level events and
        honouring cancel/interrupt flags at level boundaries.  The
        cancel check also polls the job's flag file, the path by which
        a sibling process cancels a job it does not own."""
        stats = ExploreStats()

        def on_level(level: int, row: Dict[str, int]) -> None:
            if job.cancel_requested or self._cancel_flagged(job):
                job.cancel_requested = True
                raise JobCancelled()
            if self._interrupting or job.interrupt_requested:
                raise _JobInterrupted()
            job.emit("level", level=level, **row)
            if job.request.level_delay:
                time.sleep(job.request.level_delay)

        stats.add_level_listener(on_level)
        return run_check(job.request, stats=stats,
                         checkpoint=job.checkpoint_path,
                         resume_from_checkpoint=job.resume)
