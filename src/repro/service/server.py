"""Stdlib-only asyncio HTTP front end for the checking service.

Routes (all JSON in, JSON out)::

    GET    /healthz          liveness + queue/cache counters
    POST   /jobs             submit a CheckRequest body
                             -> 201 created / 200 cached-or-coalesced
                             -> 400 invalid / 429 full (Retry-After)
    GET    /jobs             all jobs, oldest first
    GET    /jobs/<id>        one job's metadata + result
    GET    /jobs/<id>/events NDJSON stream: buffered events replayed,
                             then live-followed until the job is
                             terminal (the connection then closes)
    DELETE /jobs/<id>        cancel (immediate when queued, cooperative
                             at the next BFS level when running)

The server is deliberately minimal HTTP/1.1 (``Connection: close``, one
request per connection): it exists so ``curl`` and the bundled
:class:`~repro.service.client.ServiceClient` can drive a
:class:`~repro.service.jobs.JobManager` across processes, not to be a
general web server.  :func:`run_server` is the ``repro serve`` entry
point -- it writes a ``server.json`` endpoint file into the state
directory (so scripts can discover an ephemeral port) and turns
SIGTERM/SIGINT into a graceful drain: running jobs checkpoint at their
next BFS level and are resumed by the next server on the same state
directory.  :class:`BackgroundServer` runs the whole stack on a daemon
thread for tests and embedding.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading
from typing import Dict, Optional, Tuple

from ..parser import ParseError
from .jobs import CheckRequest, JobManager, QueueFull
from .wire import HttpError, read_body, read_head, send_json

__all__ = ["CheckService", "BackgroundServer", "run_server"]

_STREAM_POLL_SECONDS = 0.05


class CheckService:
    """One listening socket serving a :class:`JobManager`."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0):
        self.manager = manager
        self.host = host
        self.port = port  # 0 = ephemeral; start() fills the real one in
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, headers = await read_head(reader)
            if headers.get("expect", "").lower() == "100-continue":
                writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                await writer.drain()
            body = await read_body(reader, headers)
            await self._route(method, path, body, writer)
        except HttpError as exc:
            await send_json(writer, exc.status, {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # never kill the accept loop
            try:
                await send_json(writer, 500,
                                {"error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await send_json(writer, 200, self.manager.health())
            return
        if path == "/jobs":
            if method == "POST":
                await self._submit(body, writer)
                return
            if method == "GET":
                await send_json(writer, 200, {
                    "jobs": [job.to_dict() for job in self.manager.jobs()]})
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                job_id, tail = rest[:-len("/events")], "events"
            else:
                job_id, tail = rest, ""
            job = self.manager.get(job_id)
            if job is None:
                raise HttpError(404, f"no such job {job_id!r}")
            if tail == "events" and method == "GET":
                await self._stream_events(job, writer)
                return
            if tail == "" and method == "GET":
                await send_json(writer, 200, job.to_dict())
                return
            if tail == "" and method == "DELETE":
                job, accepted = self.manager.cancel(job_id)
                await send_json(writer, 200, {
                    "id": job_id, "accepted": accepted, "state": job.state})
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no route for {method} {path}")

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "body is not valid JSON") from None
        try:
            request = CheckRequest.from_dict(payload)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        try:
            job, disposition = self.manager.submit(request)
        except QueueFull as exc:
            await send_json(
                writer, 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers={"Retry-After": str(int(exc.retry_after + 0.5))})
            return
        except (ParseError, ValueError) as exc:  # fails to parse/elaborate
            raise HttpError(400, str(exc)) from None
        except KeyError as exc:  # unknown spec/invariant/property name
            raise HttpError(400, str(exc)) from None
        status = 201 if disposition == "created" else 200
        await send_json(writer, status, {
            "job": job.to_dict(), "disposition": disposition})

    async def _stream_events(self, job, writer: asyncio.StreamWriter) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        sent = 0
        while True:
            # events is append-only, so reading by index races with nothing
            while sent < len(job.events):
                line = json.dumps(job.events[sent], separators=(",", ":"))
                writer.write(line.encode("utf-8") + b"\n")
                sent += 1
            await writer.drain()
            if job.terminal and sent >= len(job.events):
                return
            await asyncio.sleep(_STREAM_POLL_SECONDS)


def _write_endpoint_file(state_dir: str, service: CheckService) -> str:
    """Drop ``server.json`` into the state dir so scripts can discover
    an ephemeral port (the smoke tests bind port 0)."""
    path = os.path.join(state_dir, "server.json")
    payload = {"host": service.host, "port": service.port,
               "url": service.url, "pid": os.getpid()}
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
    return path


def run_server(state_dir: str, host: str = "127.0.0.1", port: int = 8123,
               pool_size: int = 2, queue_limit: int = 16,
               out=None) -> int:
    """The ``repro serve`` body: run until SIGTERM/SIGINT, then drain
    gracefully (running jobs checkpoint and requeue; a later server on
    the same *state_dir* resumes them)."""
    out = out if out is not None else sys.stdout

    async def _amain() -> None:
        manager = JobManager(state_dir, pool_size=pool_size,
                             queue_limit=queue_limit)
        await manager.start()
        service = CheckService(manager, host=host, port=port)
        await service.start()
        _write_endpoint_file(manager.state_dir, service)
        print(f"repro service: listening on {service.url} "
              f"(state in {manager.state_dir}, pool {pool_size}, "
              f"queue limit {queue_limit})", file=out, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_args: stop.set())
        await stop.wait()
        print("repro service: draining (running jobs checkpoint at their "
              "next level)", file=out, flush=True)
        await service.stop()
        await manager.shutdown()
        print("repro service: shut down cleanly", file=out, flush=True)

    asyncio.run(_amain())
    return 0


class BackgroundServer:
    """The full service stack on a daemon thread, for tests/embedding::

        with BackgroundServer(state_dir) as server:
            client = ServiceClient(server.url)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM on ``repro
    serve`` -- running jobs checkpoint and persist as queued.
    """

    def __init__(self, state_dir: str, host: str = "127.0.0.1",
                 port: int = 0, pool_size: int = 2, queue_limit: int = 16):
        self._args = (state_dir, host, port, pool_size, queue_limit)
        self.manager: Optional[JobManager] = None
        self.service: Optional[CheckService] = None
        self.url: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread did not come up in 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}") from self._error
        return self

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60)
        if self._thread.is_alive():  # pragma: no cover - hung drain
            raise RuntimeError("service thread did not drain in 60s")

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        state_dir, host, port, pool_size, queue_limit = self._args
        try:
            self.manager = JobManager(state_dir, pool_size=pool_size,
                                      queue_limit=queue_limit)
            await self.manager.start()
            self.service = CheckService(self.manager, host=host, port=port)
            await self.service.start()
            self.url = self.service.url
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()
        await self.manager.shutdown()
