"""Stdlib-only asyncio HTTP front end for the checking service.

Routes (JSON in, JSON out, except ``/metrics``)::

    GET    /healthz          liveness + queue/cache counters
    GET    /metrics          fleet-wide Prometheus text exposition
    GET    /tenants          per-tenant scheduler state
    POST   /jobs             submit a CheckRequest body (the submitting
                             tenant rides in ``X-Repro-Tenant``)
                             -> 201 created / 200 cached-or-coalesced
                             -> 400 invalid / 429 throttled-or-full
                                (Retry-After from the tenant's bucket)
    GET    /jobs             all jobs on the state dir, oldest first
                             (including sibling processes' jobs)
    GET    /jobs/<id>        one job's metadata + result
    GET    /jobs/<id>/events NDJSON stream: buffered events replayed,
                             then live-followed until the job is
                             terminal (the connection then closes)
    DELETE /jobs/<id>        cancel (immediate when queued, cooperative
                             at the next BFS level when running; jobs
                             owned by a sibling process are flagged)

The server is deliberately minimal HTTP/1.1 (``Connection: close``, one
request per connection): it exists so ``curl`` and the bundled
:class:`~repro.service.client.ServiceClient` can drive a
:class:`~repro.service.jobs.JobManager` across processes, not to be a
general web server.  :func:`run_server` is the ``repro serve`` entry
point -- it writes a ``server.json`` endpoint file into the state
directory (so scripts can discover an ephemeral port) and turns
SIGTERM/SIGINT into a graceful drain: running jobs checkpoint at their
next BFS level and are resumed by the next server on the same state
directory.

``procs > 1`` pre-forks that many worker processes, each running the
full manager+server stack over the shared state directory.  Every child
binds the same port with ``SO_REUSEPORT`` (the kernel load-balances
accepts); on platforms without it the parent binds one listening socket
that the children inherit (the kernel serialises their accepts).  The
journal, metrics directory, and sharded cache are the cross-process
seams that make this safe.  :class:`BackgroundServer` runs the whole
stack on a daemon thread for tests and embedding.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import sys
import threading
from typing import Dict, List, Optional, Tuple

from ..parser import ParseError
from .jobs import (
    CheckRequest,
    JobManager,
    QueueFull,
    TenantThrottled,
    valid_job_id,
)
from .scheduler import DEFAULT_TENANT, TenantPolicy
from .wire import HttpError, read_body, read_head, send_json, send_text

__all__ = ["CheckService", "BackgroundServer", "run_server"]

_STREAM_POLL_SECONDS = 0.05
_PARENT_POLL_SECONDS = 1.0


class CheckService:
    """One listening socket serving a :class:`JobManager`."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0):
        self.manager = manager
        self.host = host
        self.port = port  # 0 = ephemeral; start() fills the real one in
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, sock: Optional[socket.socket] = None,
                    reuse_port: bool = False) -> None:
        """Begin accepting: on a fresh bind, on an inherited listening
        *sock* (pre-fork fallback), or -- with *reuse_port* -- on our own
        ``SO_REUSEPORT`` member of a shared port group."""
        if sock is not None:
            self._server = await asyncio.start_server(self._handle,
                                                      sock=sock)
        elif reuse_port:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port, reuse_port=True)
        else:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, headers = await read_head(reader)
            if headers.get("expect", "").lower() == "100-continue":
                writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                await writer.drain()
            body = await read_body(reader, headers)
            await self._route(method, path, headers, body, writer)
        except HttpError as exc:
            await send_json(writer, exc.status, {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # never kill the accept loop
            try:
                await send_json(writer, 500,
                                {"error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await send_json(writer, 200, self.manager.health())
            return
        if path == "/metrics" and method == "GET":
            await send_text(writer, 200, self.manager.metrics_text())
            return
        if path == "/tenants" and method == "GET":
            await send_json(writer, 200,
                            {"tenants": self.manager.tenants()})
            return
        if path == "/jobs":
            if method == "POST":
                await self._submit(headers, body, writer)
                return
            if method == "GET":
                await send_json(writer, 200,
                                {"jobs": self.manager.list_records()})
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                job_id, tail = rest[:-len("/events")], "events"
            else:
                job_id, tail = rest, ""
            if not valid_job_id(job_id):
                # ids become jobs/<id>.* paths downstream; anything that
                # is not a literal generated id (traversal sequences,
                # encoded slashes) is rejected before touching disk
                raise HttpError(404, f"no such job {job_id!r}")
            record = self.manager.job_record(job_id)
            if record is None:
                raise HttpError(404, f"no such job {job_id!r}")
            if tail == "events" and method == "GET":
                await self._stream_events(job_id, writer)
                return
            if tail == "" and method == "GET":
                await send_json(writer, 200, record)
                return
            if tail == "" and method == "DELETE":
                record, accepted = self.manager.cancel_any(job_id)
                await send_json(writer, 200, {
                    "id": job_id, "accepted": accepted,
                    "state": record.get("state") if record else None})
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no route for {method} {path}")

    async def _submit(self, headers: Dict[str, str], body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        tenant = headers.get("x-repro-tenant", DEFAULT_TENANT)
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "body is not valid JSON") from None
        try:
            request = CheckRequest.from_dict(payload)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        try:
            # parse/elaborate on an executor thread: a pathological
            # module_source must not block the event loop (and with it
            # /healthz and /metrics) for every other connection
            await asyncio.get_running_loop().run_in_executor(
                None, self.manager.validate_request, request)
            job, disposition = self.manager.submit(request, tenant=tenant,
                                                   prevalidated=True)
        except QueueFull as exc:
            payload = {"error": str(exc), "retry_after": exc.retry_after}
            if isinstance(exc, TenantThrottled):
                payload["tenant"] = exc.tenant
                payload["reason"] = exc.reason
            await send_json(
                writer, 429, payload,
                extra_headers={"Retry-After": str(int(exc.retry_after + 0.5))})
            return
        except (ParseError, ValueError) as exc:  # fails to parse/elaborate
            raise HttpError(400, str(exc)) from None
        except KeyError as exc:  # unknown spec/invariant/property name
            raise HttpError(400, str(exc)) from None
        status = 201 if disposition == "created" else 200
        await send_json(writer, status, {
            "job": job.to_dict(), "disposition": disposition})

    async def _stream_events(self, job_id: str,
                             writer: asyncio.StreamWriter) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        sent = 0
        while True:
            job = self.manager.get(job_id)
            if job is not None:
                # our job: events is append-only in memory, so reading
                # by index races with nothing
                while sent < len(job.events):
                    line = json.dumps(job.events[sent],
                                      separators=(",", ":"))
                    writer.write(line.encode("utf-8") + b"\n")
                    sent += 1
                terminal, drained = job.terminal, sent >= len(job.events)
            else:
                # a sibling process's job: follow its append-only
                # events file through the shared state dir
                batch = self.manager.job_events(job_id, sent) or []
                for event in batch:
                    line = json.dumps(event, separators=(",", ":"))
                    writer.write(line.encode("utf-8") + b"\n")
                    sent += 1
                record = self.manager.job_record(job_id)
                terminal = record is None or record.get("state") in (
                    "done", "failed", "cancelled")
                drained = not batch
            await writer.drain()
            if terminal and drained:
                return
            await asyncio.sleep(_STREAM_POLL_SECONDS)


def _write_endpoint_file(state_dir: str, host: str, port: int,
                         procs: int = 1) -> str:
    """Drop ``server.json`` into the state dir so scripts can discover
    an ephemeral port (the smoke tests bind port 0)."""
    path = os.path.join(state_dir, "server.json")
    payload = {"host": host, "port": port,
               "url": f"http://{host}:{port}", "pid": os.getpid(),
               "procs": procs}
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
    return path


def _serve_one(state_dir: str, host: str, port: int, pool_size: int,
               queue_limit: int, tenant_policy: Optional[TenantPolicy],
               out, sock: Optional[socket.socket] = None,
               reuse_port: bool = False, procs: int = 1,
               write_endpoint: bool = True,
               parent_pid: Optional[int] = None) -> int:
    """One process's serve loop: run until SIGTERM/SIGINT, then drain
    gracefully (running jobs checkpoint and requeue; a later server on
    the same *state_dir* resumes them).  Forked children also pass
    *parent_pid*: SIGKILL on the supervisor cannot be relayed, so each
    child watches for re-parenting and drains itself rather than serve
    on as an unsupervised orphan."""

    async def _amain() -> None:
        manager = JobManager(state_dir, pool_size=pool_size,
                             queue_limit=queue_limit,
                             tenant_policy=tenant_policy)
        await manager.start()
        service = CheckService(manager, host=host, port=port)
        await service.start(sock=sock, reuse_port=reuse_port)
        if write_endpoint:
            _write_endpoint_file(manager.state_dir, service.host,
                                 service.port, procs=procs)
        print(f"repro service: pid {os.getpid()} listening on "
              f"{service.url} (state in {manager.state_dir}, "
              f"pool {pool_size}, queue limit {queue_limit})",
              file=out, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_args: stop.set())

        async def _watch_parent() -> None:
            while os.getppid() == parent_pid:
                await asyncio.sleep(_PARENT_POLL_SECONDS)
            print(f"repro service: pid {os.getpid()} lost its supervisor "
                  f"(pid {parent_pid}); draining", file=out, flush=True)
            stop.set()

        watchdog = (asyncio.get_running_loop().create_task(_watch_parent())
                    if parent_pid is not None else None)
        await stop.wait()
        if watchdog is not None:
            watchdog.cancel()
        print(f"repro service: pid {os.getpid()} draining (running jobs "
              f"checkpoint at their next level)", file=out, flush=True)
        await service.stop()
        await manager.shutdown()
        print(f"repro service: pid {os.getpid()} shut down cleanly",
              file=out, flush=True)

    asyncio.run(_amain())
    return 0


def _probe_reuseport(host: str, port: int) -> int:
    """Resolve port 0 to a concrete port for a SO_REUSEPORT group (every
    member must bind the same number).  The momentary bind-then-close
    leaves a tiny window in which another process could take the port;
    pre-forked children fail loudly on bind if that ever happens."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        return sock.getsockname()[1]
    finally:
        sock.close()


def run_server(state_dir: str, host: str = "127.0.0.1", port: int = 8123,
               pool_size: int = 2, queue_limit: int = 16,
               procs: int = 1,
               tenant_policy: Optional[TenantPolicy] = None,
               out=None) -> int:
    """The ``repro serve`` body.  ``procs == 1`` serves in this process;
    ``procs > 1`` pre-forks that many full manager+server stacks over
    the shared state directory, each binding the port with
    ``SO_REUSEPORT`` (falling back to one parent-bound socket the
    children inherit).  The parent relays SIGTERM/SIGINT to the children
    and waits for them to drain."""
    out = out if out is not None else sys.stdout
    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    if procs == 1:
        return _serve_one(state_dir, host, port, pool_size, queue_limit,
                          tenant_policy, out)

    inherited: Optional[socket.socket] = None
    reuse_port = hasattr(socket, "SO_REUSEPORT")
    if reuse_port:
        if port == 0:
            port = _probe_reuseport(host, port)
    else:  # pragma: no cover - platform without SO_REUSEPORT
        inherited = socket.create_server((host, port), backlog=128)
        port = inherited.getsockname()[1]
    state_dir = os.path.abspath(state_dir)
    os.makedirs(state_dir, exist_ok=True)
    _write_endpoint_file(state_dir, host, port, procs=procs)

    supervisor = os.getpid()
    children: List[int] = []
    for _index in range(procs):
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = _serve_one(state_dir, host, port, pool_size,
                                  queue_limit, tenant_policy, out,
                                  sock=inherited, reuse_port=reuse_port,
                                  procs=procs, write_endpoint=False,
                                  parent_pid=supervisor)
            except BaseException:  # noqa: BLE001 - child must not unwind
                pass
            finally:
                os._exit(code)
        children.append(pid)
    if inherited is not None:  # pragma: no cover - fallback path
        inherited.close()

    def relay(signum: int, _frame: object) -> None:
        for child in children:
            try:
                os.kill(child, signum)
            except ProcessLookupError:
                pass

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, relay)
    print(f"repro service: parent pid {os.getpid()} supervising "
          f"{procs} processes on http://{host}:{port}", file=out,
          flush=True)
    code = 0
    remaining = set(children)
    while remaining:
        try:
            pid, status = os.wait()
        except InterruptedError:  # a relayed signal; keep waiting
            continue
        except ChildProcessError:  # pragma: no cover
            break
        remaining.discard(pid)
        child_code = os.waitstatus_to_exitcode(status)
        if child_code != 0:
            code = 1
    print(f"repro service: all {procs} processes exited", file=out,
          flush=True)
    return code


class BackgroundServer:
    """The full service stack on a daemon thread, for tests/embedding::

        with BackgroundServer(state_dir) as server:
            client = ServiceClient(server.url)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM on ``repro
    serve`` -- running jobs checkpoint and persist as queued.
    """

    def __init__(self, state_dir: str, host: str = "127.0.0.1",
                 port: int = 0, pool_size: int = 2, queue_limit: int = 16,
                 tenant_policy: Optional[TenantPolicy] = None):
        self._args = (state_dir, host, port, pool_size, queue_limit,
                      tenant_policy)
        self.manager: Optional[JobManager] = None
        self.service: Optional[CheckService] = None
        self.url: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread did not come up in 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}") from self._error
        return self

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60)
        if self._thread.is_alive():  # pragma: no cover - hung drain
            raise RuntimeError("service thread did not drain in 60s")

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        (state_dir, host, port, pool_size, queue_limit,
         tenant_policy) = self._args
        try:
            self.manager = JobManager(state_dir, pool_size=pool_size,
                                      queue_limit=queue_limit,
                                      tenant_policy=tenant_policy)
            await self.manager.start()
            self.service = CheckService(self.manager, host=host, port=port)
            await self.service.start()
            self.url = self.service.url
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()
        await self.manager.shutdown()
