"""Shared HTTP/NDJSON wire layer for the service and distributed tiers.

The checking service (:mod:`repro.service.server`) and the distributed
worker nodes (:mod:`repro.service.worker`) speak the same deliberately
minimal HTTP/1.1 dialect: one request per connection, ``Connection:
close``, JSON bodies, NDJSON for streams.  This module is the single
home of that dialect.

Server side (asyncio): :func:`read_head` / :func:`read_body` /
:func:`send_json` plus :class:`HttpError`, which handlers raise to turn
into a JSON error response.

Client side (blocking): :class:`WorkerLink`, the coordinator's
per-worker connection.  Each request opens a fresh socket; the link
tracks the in-flight socket so :meth:`WorkerLink.abort` -- called from
the heartbeat monitor thread -- can tear down a read that is blocked on
a dead or hung node.  Non-2xx responses raise :class:`ProtocolError`
(the node is alive but refused); everything transport-shaped raises
:class:`OSError`/:class:`ConnectionError` (the node or link is gone),
which is the signal the coordinator's fault machinery keys on.

:class:`NetFaultPlan` is the seeded network-fault seam: it makes a
:class:`WorkerLink` deterministically *drop* requests (a transient
``ConnectionError`` before anything is sent, which must be absorbed by
coordinator-side retries) or *duplicate* them (the request is performed
twice, which the worker endpoints must tolerate by being idempotent).
The chaos tests drive both to prove the wire protocol is retry-safe.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

__all__ = [
    "MAX_BODY", "REASONS", "HttpError", "read_head", "read_body",
    "send_json", "send_text", "ProtocolError", "WorkerLink",
    "NetFaultPlan",
]

MAX_BODY = 16 * 1024 * 1024  # a body larger than this is a typo

REASONS = {200: "OK", 201: "Created", 204: "No Content",
           400: "Bad Request", 404: "Not Found",
           405: "Method Not Allowed", 409: "Conflict",
           413: "Payload Too Large", 429: "Too Many Requests",
           500: "Internal Server Error"}


class HttpError(Exception):
    """Raised by server-side handlers; rendered as a JSON error body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


# -- server-side asyncio helpers ---------------------------------------------


async def read_head(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str]]:
    """Parse ``METHOD path`` and the header block from *reader*."""
    request_line = await reader.readline()
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if b":" in line:
            key, value = line.decode("latin-1").split(":", 1)
            headers[key.strip().lower()] = value.strip()
    return method, path, headers


async def read_body(reader: asyncio.StreamReader, headers: Dict[str, str],
                    max_body: int = MAX_BODY) -> bytes:
    """Read a ``Content-Length``-framed body, bounded by *max_body*."""
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "bad Content-Length") from None
    if length > max_body:
        raise HttpError(413, f"body larger than {max_body} bytes")
    if length <= 0:
        return b""
    return await reader.readexactly(length)


async def send_json(writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, object],
                    extra_headers: Optional[Dict[str, str]] = None) -> None:
    """Write a complete ``Connection: close`` JSON response."""
    body = json.dumps(payload).encode("utf-8")
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    for key, value in (extra_headers or {}).items():
        head.append(f"{key}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def send_text(writer: asyncio.StreamWriter, status: int, text: str,
                    content_type: str = "text/plain; version=0.0.4; "
                                        "charset=utf-8") -> None:
    """Write a complete ``Connection: close`` plain-text response (the
    default content type is the Prometheus exposition format's)."""
    body = text.encode("utf-8")
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


# -- client side --------------------------------------------------------------


class ProtocolError(RuntimeError):
    """A non-2xx response: the peer is alive but refused or failed the
    request.  Deliberately *not* an :class:`OSError` -- the coordinator
    treats transport errors as node loss and protocol errors as bugs."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class NetFaultPlan:
    """Seeded, deterministic network faults for :class:`WorkerLink`.

    Each POST rolls the shared RNG once: below ``drop_rate`` the request
    is dropped (a ``ConnectionError`` is raised before any bytes go out,
    consuming one coordinator-side retry); in the next ``dup_rate`` band
    it is duplicated (performed twice back to back, exercising endpoint
    idempotence).  GETs (health probes) are never faulted -- dropping a
    heartbeat would fake a node loss rather than a network fault.

    One plan may be shared across the links of a run; the lock keeps the
    roll sequence well-defined, and with a fixed seed the whole fault
    schedule replays identically across runs with the same request
    order.
    """

    def __init__(self, seed: int = 0, drop_rate: float = 0.0,
                 dup_rate: float = 0.0):
        if drop_rate + dup_rate > 1.0:
            raise ValueError("drop_rate + dup_rate must be <= 1")
        self._rng = random.Random(seed)
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.drops = 0
        self.duplicates = 0
        self._lock = threading.Lock()

    def decide(self, path: str) -> str:
        """``"drop"``, ``"dup"``, or ``"ok"`` for the next POST."""
        with self._lock:
            roll = self._rng.random()
            if roll < self.drop_rate:
                self.drops += 1
                return "drop"
            if roll < self.drop_rate + self.dup_rate:
                self.duplicates += 1
                return "dup"
            return "ok"


class WorkerLink:
    """Blocking one-request-per-connection HTTP client for one worker.

    Used from the coordinator's request threads.  ``abort()`` is safe to
    call from any other thread (the heartbeat monitor): it closes the
    in-flight socket, so a ``recv`` blocked on a hung node fails with an
    ``OSError`` instead of waiting forever, and marks the link dead so
    later requests fail fast.
    """

    def __init__(self, url: str, timeout: Optional[float] = None,
                 fault: Optional[NetFaultPlan] = None):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.url = f"http://{self.host}:{self.port}"
        self.timeout = timeout
        self.fault = fault
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._aborted = False

    # -- public API ----------------------------------------------------------

    def get(self, path: str, timeout: Optional[float] = None) -> Dict:
        return self._perform_json("GET", path, None, timeout)

    def post(self, path: str, payload: object,
             timeout: Optional[float] = None) -> Dict:
        attempts = 1
        if self.fault is not None:
            verdict = self.fault.decide(path)
            if verdict == "drop":
                raise ConnectionError(f"injected drop of POST {path}")
            if verdict == "dup":
                attempts = 2
        result: Dict = {}
        for _ in range(attempts):
            result = self._perform_json("POST", path, payload, timeout)
        return result

    def post_stream(self, path: str, payload: object,
                    timeout: Optional[float] = None) -> Iterator[Dict]:
        """POST and yield the NDJSON response line by line."""
        if self.fault is not None:
            verdict = self.fault.decide(path)
            if verdict == "drop":
                raise ConnectionError(f"injected drop of POST {path}")
            if verdict == "dup":
                # consume-and-discard one full response first; the
                # endpoint is pure, so the repeat observes the same state
                for _ in self._perform_stream(path, payload, timeout):
                    pass
        yield from self._perform_stream(path, payload, timeout)

    def abort(self) -> None:
        """Kill the in-flight request (thread-safe) and poison the link."""
        with self._lock:
            self._aborted = True
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self.abort()

    # -- plumbing ------------------------------------------------------------

    def _connect(self, timeout: Optional[float]) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port),
            timeout=self.timeout if timeout is None else timeout)
        with self._lock:
            if self._aborted:
                sock.close()
                raise ConnectionError(f"link to {self.url} is aborted")
            self._sock = sock
        return sock

    def _release(self, sock: socket.socket) -> None:
        with self._lock:
            if self._sock is sock:
                self._sock = None
        try:
            sock.close()
        except OSError:
            pass

    def _send_request(self, sock: socket.socket, method: str, path: str,
                      body: bytes) -> None:
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        sock.sendall(head.encode("latin-1") + body)

    @staticmethod
    def _read_response_head(fh) -> Tuple[int, Dict[str, str]]:
        status_line = fh.readline()
        if not status_line:
            raise ConnectionError("peer closed before responding")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = fh.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" in line:
                key, value = line.decode("latin-1").split(":", 1)
                headers[key.strip().lower()] = value.strip()
        return status, headers

    @staticmethod
    def _error_payload(fh, headers: Dict[str, str]) -> object:
        length = int(headers.get("content-length", "0"))
        raw = fh.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            return {"error": raw.decode("utf-8", "replace")}

    def _perform_json(self, method: str, path: str, payload: object,
                      timeout: Optional[float]) -> Dict:
        body = b"" if payload is None else \
            json.dumps(payload).encode("utf-8")
        sock = self._connect(timeout)
        try:
            fh = sock.makefile("rb")
            self._send_request(sock, method, path, body)
            status, headers = self._read_response_head(fh)
            length = int(headers.get("content-length", "0"))
            raw = fh.read(length) if length else b""
            if len(raw) != length:
                raise ConnectionError("peer closed mid-body")
            try:
                data = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                data = {"error": raw.decode("utf-8", "replace")}
            if status >= 300:
                message = data.get("error", data) if isinstance(data, dict) \
                    else data
                raise ProtocolError(status, str(message))
            return data
        finally:
            self._release(sock)

    def _perform_stream(self, path: str, payload: object,
                        timeout: Optional[float]) -> Iterator[Dict]:
        body = json.dumps(payload).encode("utf-8")
        sock = self._connect(timeout)
        try:
            fh = sock.makefile("rb")
            self._send_request(sock, "POST", path, body)
            status, headers = self._read_response_head(fh)
            if status >= 300:
                data = self._error_payload(fh, headers)
                message = data.get("error", data) if isinstance(data, dict) \
                    else data
                raise ProtocolError(status, str(message))
            # ``Connection: close`` framing: the stream ends at EOF; the
            # application layer puts its own terminator line at the end
            # so a mid-stream connection loss is distinguishable
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            self._release(sock)
