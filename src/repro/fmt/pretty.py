"""TLA-style pretty printing of expressions and temporal formulas.

The printer is precedence-aware: parentheses appear only where the mini-TLA
grammar needs them, so ``pretty`` output round-trips through
:func:`repro.parser.parse_formula` for the shared fragment (tested).
"""

from __future__ import annotations


from ..kernel.expr import (
    And,
    Arith,
    Cmp,
    Const,
    Eq,
    Equiv,
    Exists,
    Expr,
    Fn,
    Forall,
    IfThenElse,
    Implies,
    InSet,
    Not,
    Or,
    TupleExpr,
    Var,
)
from ..kernel.values import format_value
from ..spec import Spec
from ..temporal.formulas import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    Hide,
    LeadsTo,
    SF,
    StatePred,
    TAnd,
    TEquiv,
    TImplies,
    TNot,
    TOr,
    TemporalFormula,
    WF,
)

# precedence levels, loosest binds last (mirrors the parser)
_P_EQUIV = 1
_P_IMPLIES = 2
_P_LEADSTO = 3
_P_OR = 4
_P_AND = 5
_P_CMP = 7
_P_SUM = 9
_P_TERM = 10
_P_UNARY = 11
_P_ATOM = 12


class _Symbols:
    def __init__(self, unicode: bool):
        self.and_ = "∧" if unicode else "/\\"
        self.or_ = "∨" if unicode else "\\/"
        self.not_ = "¬" if unicode else "~"
        self.implies = "⇒" if unicode else "=>"
        self.equiv = "≡" if unicode else "<=>"
        self.always = "□" if unicode else "[]"
        self.eventually = "◇" if unicode else "<>"
        self.leadsto = "⤳" if unicode else "~>"
        self.exists = "∃" if unicode else "\\E"
        self.forall = "∀" if unicode else "\\A"
        self.in_ = "∈" if unicode else "\\in"
        self.ne = "≠" if unicode else "#"


def pretty(obj, unicode: bool = False) -> str:
    """Render an Expr or TemporalFormula in TLA-style concrete syntax."""
    sym = _Symbols(unicode)
    if isinstance(obj, TemporalFormula):
        return _tf(obj, sym, _P_EQUIV)
    if isinstance(obj, Expr):
        return _expr(obj, sym, _P_EQUIV)
    raise TypeError(f"cannot pretty-print {obj!r}")


def _paren(text: str, level: int, required: int) -> str:
    return f"({text})" if level > required else text


def _expr(node: Expr, sym: _Symbols, level: int) -> str:
    if isinstance(node, Const):
        return format_value(node.value)
    if isinstance(node, Var):
        return node.name + ("'" if node.primed else "")
    if isinstance(node, And):
        if not node.args:
            return "TRUE"
        inner = f" {sym.and_} ".join(_expr(a, sym, _P_AND + 1) for a in node.args)
        return _paren(inner, level, _P_AND)
    if isinstance(node, Or):
        if not node.args:
            return "FALSE"
        inner = f" {sym.or_} ".join(_expr(a, sym, _P_OR + 1) for a in node.args)
        return _paren(inner, level, _P_OR)
    if isinstance(node, Not):
        inner = node.arg
        if isinstance(inner, Eq):  # a # b reads better than ~(a = b)
            text = (f"{_expr(inner.args[0], sym, _P_CMP + 1)} {sym.ne} "
                    f"{_expr(inner.args[1], sym, _P_CMP + 1)}")
            return _paren(text, level, _P_CMP)
        return _paren(f"{sym.not_}{_expr(inner, sym, _P_UNARY)}", level, _P_UNARY)
    if isinstance(node, Implies):
        text = (f"{_expr(node.args[0], sym, _P_IMPLIES + 1)} {sym.implies} "
                f"{_expr(node.args[1], sym, _P_IMPLIES)}")
        return _paren(text, level, _P_IMPLIES)
    if isinstance(node, Equiv):
        text = (f"{_expr(node.args[0], sym, _P_EQUIV + 1)} {sym.equiv} "
                f"{_expr(node.args[1], sym, _P_EQUIV + 1)}")
        return _paren(text, level, _P_EQUIV)
    if isinstance(node, Eq):
        text = (f"{_expr(node.args[0], sym, _P_CMP + 1)} = "
                f"{_expr(node.args[1], sym, _P_CMP + 1)}")
        return _paren(text, level, _P_CMP)
    if isinstance(node, Cmp):
        text = (f"{_expr(node.args[0], sym, _P_CMP + 1)} {node.op} "
                f"{_expr(node.args[1], sym, _P_CMP + 1)}")
        return _paren(text, level, _P_CMP)
    if isinstance(node, Arith):
        if node.op in ("+", "-"):
            text = (f"{_expr(node.args[0], sym, _P_SUM)} {node.op} "
                    f"{_expr(node.args[1], sym, _P_SUM + 1)}")
            return _paren(text, level, _P_SUM)
        text = (f"{_expr(node.args[0], sym, _P_TERM)} {node.op} "
                f"{_expr(node.args[1], sym, _P_TERM + 1)}")
        return _paren(text, level, _P_TERM)
    if isinstance(node, TupleExpr):
        return "<<" + ", ".join(_expr(a, sym, _P_EQUIV) for a in node.args) + ">>"
    if isinstance(node, IfThenElse):
        text = (f"IF {_expr(node.args[0], sym, _P_EQUIV)} "
                f"THEN {_expr(node.args[1], sym, _P_EQUIV)} "
                f"ELSE {_expr(node.args[2], sym, _P_EQUIV)}")
        return _paren(text, level, _P_IMPLIES)
    if isinstance(node, Fn):
        name = "Cat" if node.fname == "Cat" else node.fname
        if node.fname == "Cat":
            text = (f"{_expr(node.args[0], sym, _P_SUM)} \\o "
                    f"{_expr(node.args[1], sym, _P_SUM + 1)}")
            return _paren(text, level, _P_SUM)
        return f"{name}(" + ", ".join(_expr(a, sym, _P_EQUIV) for a in node.args) + ")"
    if isinstance(node, InSet):
        text = f"{_expr(node.args[0], sym, _P_CMP + 1)} {sym.in_} {node.domain!r}"
        return _paren(text, level, _P_CMP)
    if isinstance(node, (Exists, Forall)):
        quant = sym.exists if isinstance(node, Exists) else sym.forall
        text = (f"{quant} {node.var} {sym.in_} {_domain(node.domain)} : "
                f"{_expr(node.body, sym, _P_EQUIV)}")
        return _paren(text, level, _P_IMPLIES)
    return repr(node)


def _domain(domain) -> str:
    from ..kernel.values import FiniteDomain, TupleDomain

    if isinstance(domain, FiniteDomain):
        values = list(domain.values())
        if all(isinstance(v, int) and not isinstance(v, bool) for v in values) \
                and values == list(range(values[0], values[-1] + 1)) and len(values) > 1:
            return f"{values[0]}..{values[-1]}"
        return "{" + ", ".join(format_value(v) for v in values) + "}"
    if isinstance(domain, TupleDomain):
        return f"Seq({_domain(domain.base)}, {domain.max_len})"
    return repr(domain)


def _sub(names) -> str:
    if len(names) == 1:
        return names[0]
    return "<<" + ", ".join(names) + ">>"


def _tf(node: TemporalFormula, sym: _Symbols, level: int) -> str:
    if isinstance(node, StatePred):
        return _expr(node.pred, sym, level)
    if isinstance(node, ActionBox):
        return f"{sym.always}[{_expr(node.action, sym, _P_EQUIV)}]_{_sub(node.sub)}"
    if isinstance(node, ActionDiamond):
        return f"{sym.eventually}<<{_expr(node.action, sym, _P_EQUIV)}>>_{_sub(node.sub)}"
    if isinstance(node, Always):
        return _paren(f"{sym.always}{_tf(node.body, sym, _P_UNARY)}", level, _P_UNARY)
    if isinstance(node, Eventually):
        return _paren(f"{sym.eventually}{_tf(node.body, sym, _P_UNARY)}", level, _P_UNARY)
    if isinstance(node, LeadsTo):
        text = (f"{_tf(node.lhs, sym, _P_LEADSTO + 1)} {sym.leadsto} "
                f"{_tf(node.rhs, sym, _P_LEADSTO + 1)}")
        return _paren(text, level, _P_LEADSTO)
    if isinstance(node, SF):
        return f"SF_{_sub(node.sub)}({_expr(node.action, sym, _P_EQUIV)})"
    if isinstance(node, WF):
        return f"WF_{_sub(node.sub)}({_expr(node.action, sym, _P_EQUIV)})"
    if isinstance(node, TNot):
        return _paren(f"{sym.not_}{_tf(node.body, sym, _P_UNARY)}", level, _P_UNARY)
    if isinstance(node, TAnd):
        if not node.parts:
            return "TRUE"
        inner = f" {sym.and_} ".join(_tf(p, sym, _P_AND + 1) for p in node.parts)
        return _paren(inner, level, _P_AND)
    if isinstance(node, TOr):
        if not node.parts:
            return "FALSE"
        inner = f" {sym.or_} ".join(_tf(p, sym, _P_OR + 1) for p in node.parts)
        return _paren(inner, level, _P_OR)
    if isinstance(node, TImplies):
        text = (f"{_tf(node.lhs, sym, _P_IMPLIES + 1)} {sym.implies} "
                f"{_tf(node.rhs, sym, _P_IMPLIES)}")
        return _paren(text, level, _P_IMPLIES)
    if isinstance(node, TEquiv):
        text = (f"{_tf(node.lhs, sym, _P_EQUIV + 1)} {sym.equiv} "
                f"{_tf(node.rhs, sym, _P_EQUIV + 1)}")
        return _paren(text, level, _P_EQUIV)
    if isinstance(node, Hide):
        bound = ", ".join(sorted(node.bindings))
        text = f"{sym.exists} {bound} : {_tf(node.body, sym, _P_EQUIV)}"
        return _paren(text, level, _P_IMPLIES)
    # paper operators (core) and anything else: use their repr conventions
    from ..core.operators import AsLongAs, Closure, Guarantees, Orthogonal, Plus

    if isinstance(node, Closure):
        return f"C({_tf(node.body, sym, _P_EQUIV)})"
    if isinstance(node, Guarantees):
        symbol = "⊳" if sym.and_ == "∧" else "-+>"
        text = f"{_tf(node.env, sym, _P_IMPLIES + 1)} {symbol} {_tf(node.sys, sym, _P_IMPLIES + 1)}"
        return _paren(text, level, _P_IMPLIES)
    if isinstance(node, AsLongAs):
        symbol = "−▷" if sym.and_ == "∧" else "-->"
        text = f"{_tf(node.env, sym, _P_IMPLIES + 1)} {symbol} {_tf(node.sys, sym, _P_IMPLIES + 1)}"
        return _paren(text, level, _P_IMPLIES)
    if isinstance(node, Orthogonal):
        symbol = "⊥" if sym.and_ == "∧" else "_|_"
        text = f"{_tf(node.env, sym, _P_IMPLIES + 1)} {symbol} {_tf(node.sys, sym, _P_IMPLIES + 1)}"
        return _paren(text, level, _P_IMPLIES)
    if isinstance(node, Plus):
        return f"({_tf(node.env, sym, _P_EQUIV)})+{_sub(node.sub)}"
    return repr(node)


def pretty_spec(spec: Spec, unicode: bool = False) -> str:
    """Render a canonical Spec in the layout of the paper's Figure 6."""
    sym = _Symbols(unicode)
    lines = [
        f"{spec.name} ==",
        f"  {sym.and_} {_expr(spec.init, sym, _P_AND + 1)}",
        f"  {sym.and_} {sym.always}[{_expr(spec.next_action, sym, _P_EQUIV)}]_{_sub(spec.sub)}",
    ]
    for fair in spec.fairness:
        lines.append(
            f"  {sym.and_} {fair.kind}_{_sub(fair.sub)}"
            f"({_expr(fair.action, sym, _P_EQUIV)})"
        )
    return "\n".join(lines)
