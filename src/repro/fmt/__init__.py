"""Rendering of expressions, formulas, and specifications.

:func:`pretty` renders kernel expressions and temporal formulas in
TLA-style concrete syntax (ASCII by default, Unicode with
``unicode=True``); :func:`pretty_spec` renders a canonical specification
the way the paper's Figure 6 lays one out.
"""

from .pretty import pretty, pretty_spec

__all__ = ["pretty", "pretty_spec"]
