"""``python -m repro`` entry point."""

import sys

from .tools.cli import main

sys.exit(main())
