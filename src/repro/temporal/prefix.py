"""Finite-behavior satisfaction and failure points (paper, section 2.4).

For a formula ``F`` and a finite behavior ``ρ``, the paper defines "ρ
satisfies F" as: *ρ can be extended to an infinite behavior satisfying F*.
This notion underpins everything in the paper's safety machinery -- the
closure ``C``, and the operators ``⊳``, ``−▷``, ``+v``, ``⊥`` all
quantify over prefixes of a behavior.

:func:`prefix_sat` computes finite satisfaction *exactly* for the fragment
the paper's canonical specifications live in:

* state predicates (and their negations): determined by the first state;
* ``□[A]_v`` and ``□P``: every step/state so far must comply -- the
  infinite stuttering extension then witnesses extendability;
* conjunction: exact for the above, plus fairness conjuncts -- any finite
  behavior extends to one satisfying ``WF``/``SF`` (take an ``<A>_v`` step
  whenever enabled), which is the machine-closure fact behind the paper's
  Proposition 1;
* disjunction: always exact (an extension satisfying ``F ∨ G`` satisfies
  one of them);
* ``∃`` (Hide): bounded witness search over the prefix;
* eventualities (``◇``, ``~>``, ``◇<A>_v``) and fairness at top level:
  finitely satisfiable (returns True) -- exact whenever the eventuality's
  target is achievable in the unconstrained universe, which holds for
  every specification in this repository (documented approximation
  otherwise).

Formulas outside the fragment raise :class:`NotSafetyCheckable` rather
than silently guessing.

:func:`failure_point` lifts this to lassos: the first ``n`` at which the
``n``-state prefix of the (infinite) behavior stops being extendable to
satisfy ``F``.  For the step-local fragment above, any failure manifests
within one extra trip around the loop, so the scan is finite and complete.
The paper's operators then reduce to arithmetic on failure points -- see
:mod:`repro.core.operators`.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Union

from ..kernel.behavior import FiniteBehavior, Lasso
from ..kernel.expr import EvalError
from ..kernel.action import holds_on_step
from ..kernel.state import Universe
from .formulas import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    Hide,
    LeadsTo,
    SF,
    StatePred,
    TAnd,
    TemporalFormula,
    TImplies,
    TNot,
    TOr,
    WF,
    to_tf,
)


class NotSafetyCheckable(Exception):
    """The formula lies outside the fragment for which finite satisfaction
    is implemented."""


class PrefixContext:
    """Options threaded through a prefix-satisfaction computation."""

    __slots__ = ("universe", "max_witness_candidates")

    def __init__(self, universe: Optional[Universe] = None,
                 max_witness_candidates: int = 500_000):
        self.universe = universe
        self.max_witness_candidates = max_witness_candidates


def prefix_sat(
    formula: object,
    behavior: FiniteBehavior,
    ctx: Optional[PrefixContext] = None,
) -> bool:
    """Does *behavior* extend to an infinite behavior satisfying *formula*?"""
    if ctx is None:
        ctx = PrefixContext()
    return _sat(to_tf(formula), behavior, ctx)


def _sat(tf: TemporalFormula, fb: FiniteBehavior, ctx: PrefixContext) -> bool:
    custom = getattr(tf, "finite_sat", None)
    if custom is not None:
        return custom(fb, ctx)

    if isinstance(tf, StatePred):
        return _state_pred(tf, fb)
    if isinstance(tf, TNot):
        inner = tf.body
        if isinstance(inner, StatePred):
            return not _state_pred(inner, fb)
        raise NotSafetyCheckable(
            f"negation is only finite-checkable on state predicates, got {inner!r}"
        )
    if isinstance(tf, ActionBox):
        try:
            return all(
                holds_on_step(tf._square, fb[i], fb[i + 1]) for i in range(len(fb) - 1)
            )
        except EvalError as exc:
            raise NotSafetyCheckable(f"cannot evaluate {tf!r} on the prefix: {exc}")
    if isinstance(tf, Always):
        body = tf.body
        if isinstance(body, StatePred):
            return all(_pred_at(body, fb, i) for i in range(len(fb)))
        if isinstance(body, (ActionBox, Always, TAnd)):
            return _sat(_flatten_always(body), fb, ctx)
        raise NotSafetyCheckable(f"Always over {body!r} is not finite-checkable")
    if isinstance(tf, TAnd):
        return all(_sat(part, fb, ctx) for part in tf.parts)
    if isinstance(tf, TOr):
        return any(_sat(part, fb, ctx) for part in tf.parts)
    if isinstance(tf, TImplies):
        if isinstance(tf.lhs, StatePred):
            return (not _state_pred(tf.lhs, fb)) or _sat(tf.rhs, fb, ctx)
        raise NotSafetyCheckable(
            f"implication is finite-checkable only with a state-predicate "
            f"hypothesis, got {tf.lhs!r}"
        )
    if isinstance(tf, (WF, SF, Eventually, LeadsTo, ActionDiamond)):
        # Eventualities and fairness are satisfiable from any finite prefix
        # by a suitable (unconstrained) extension; see the module docstring.
        return True
    if isinstance(tf, Hide):
        return _hide_sat(tf, fb, ctx)
    raise NotSafetyCheckable(f"no finite-satisfaction rule for {tf!r}")


def _flatten_always(body: TemporalFormula) -> TemporalFormula:
    """``□`` is idempotent and distributes over ∧ within our fragment."""
    if isinstance(body, Always):
        return _flatten_always(body.body)
    if isinstance(body, TAnd):
        return TAnd(*[Always(part) if isinstance(part, StatePred) else part
                      for part in body.parts])
    return body


def _state_pred(tf: StatePred, fb: FiniteBehavior) -> bool:
    return _pred_at(tf, fb, 0)


def _pred_at(tf: StatePred, fb: FiniteBehavior, index: int) -> bool:
    value = tf.pred.eval_state(fb[index])
    if not isinstance(value, bool):
        raise NotSafetyCheckable(f"{tf.pred!r} is not Boolean-valued")
    return value


def _hide_sat(tf: Hide, fb: FiniteBehavior, ctx: PrefixContext) -> bool:
    """∃x : F on a finite behavior: some hidden-value sequence over the
    prefix makes the body finitely satisfiable."""
    names = sorted(tf.bindings)
    domains = [list(tf.bindings[name].values()) for name in names]
    per_position = list(itertools.product(*domains))
    total = len(per_position) ** len(fb)
    if total > ctx.max_witness_candidates:
        raise NotSafetyCheckable(
            f"hidden-witness search over the prefix needs {total} candidates "
            f"(> {ctx.max_witness_candidates})"
        )
    for assignment in itertools.product(per_position, repeat=len(fb)):
        states = [
            fb[i].update(dict(zip(names, assignment[i]))) for i in range(len(fb))
        ]
        if _sat(tf.body, FiniteBehavior(states), ctx):
            return True
    return False


INFINITE = math.inf


def failure_point(
    formula: object,
    lasso: Lasso,
    ctx: Optional[PrefixContext] = None,
) -> Union[int, float]:
    """The smallest ``n >= 1`` such that the first ``n`` states of the
    behavior do *not* satisfy *formula* (finitely); ``INFINITE`` if every
    prefix satisfies it.

    The scan covers one extra trip around the loop beyond the canonical
    states; for the step-local safety fragment every possible failure
    appears in that window, so ``INFINITE`` is definitive.
    """
    tf = to_tf(formula)
    if ctx is None:
        ctx = PrefixContext()
    horizon = lasso.length + lasso.loop_length + 1
    for n in range(1, horizon + 1):
        if not prefix_sat(tf, lasso.prefix(n), ctx):
            return n
    return INFINITE


def holds_for_first(formula: object, lasso: Lasso, n: int,
                    ctx: Optional[PrefixContext] = None) -> bool:
    """The paper's "F holds for the first n states of σ" (vacuous at n=0)."""
    if n == 0:
        return True
    if ctx is None:
        ctx = PrefixContext()
    return prefix_sat(formula, lasso.prefix(n), ctx)
