"""Exact evaluation of temporal formulas on lasso behaviors.

An :class:`EvalContext` binds a formula-evaluation session to one lasso:
it memoises subformula values per canonical position, caches ``ENABLED``
computations (needed by ``WF``/``SF``), and performs the witness search for
``∃`` (:class:`~repro.temporal.formulas.Hide`).

The public entry point is :func:`holds`::

    holds(spec_formula, lasso, universe=spec.universe)

Evaluation on a lasso is *exact* for every operator: a lasso denotes one
concrete infinite behavior, and each operator's truth value on an
ultimately periodic behavior is computable (fairness reduces to properties
of the loop).  The only approximation in this module is the bounded witness
search for ``∃`` -- a witness whose period exceeds ``max_unroll`` copies of
the visible loop, or beyond ``max_witness_candidates`` assignments, is
reported via :class:`WitnessSearchExhausted` rather than silently missed.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..kernel.behavior import Lasso
from ..kernel.expr import Expr
from ..kernel.state import State, Universe
from ..kernel.action import enabled as kernel_enabled
from .formulas import Hide, TemporalFormula, to_tf


class WitnessSearchExhausted(Exception):
    """The bounded search for a hidden-variable witness hit its limits
    without either finding a witness or exhausting the space."""


class EvalContext:
    """Evaluation session for one formula family over one lasso."""

    def __init__(
        self,
        lasso: Lasso,
        universe: Optional[Universe] = None,
        max_unroll: int = 2,
        max_witness_candidates: int = 500_000,
    ):
        self.lasso = lasso
        self.universe = universe
        self.max_unroll = max_unroll
        self.max_witness_candidates = max_witness_candidates
        # memo keys use id(); the retained lists pin every cached object so
        # a garbage-collected formula's id cannot be recycled by a new one
        # and silently alias its cache entry
        self._memo: Dict[Tuple[int, int], bool] = {}
        self._retained: list = []
        self._enabled_cache: Dict[Tuple[int, State], bool] = {}

    # -- formula evaluation -------------------------------------------------

    def eval(self, formula: TemporalFormula, pos: int) -> bool:
        key = (id(formula), pos)
        cached = self._memo.get(key)
        if cached is None:
            cached = formula.eval_at(self, pos)
            self._memo[key] = cached
            self._retained.append(formula)
        return cached

    # -- ENABLED ------------------------------------------------------------

    def enabled(self, action: Expr, state: State) -> bool:
        if self.universe is None:
            raise ValueError(
                "evaluating WF/SF requires a Universe (for ENABLED); "
                "pass universe= to holds()/EvalContext"
            )
        key = (id(action), state)
        cached = self._enabled_cache.get(key)
        if cached is None:
            cached = kernel_enabled(action, state, self.universe)
            self._enabled_cache[key] = cached
            self._retained.append(action)
        return cached

    # -- witness search for Hide ---------------------------------------------

    def search_witness(self, hide: Hide) -> bool:
        """Does some assignment of hidden-variable value sequences make the
        body true?

        Tries lassos with the loop unrolled 1..max_unroll times, assigning
        one value per hidden variable per canonical position.  Exact up to
        those bounds; raises :class:`WitnessSearchExhausted` if the bounded
        space was cut short by ``max_witness_candidates``.
        """
        names = sorted(hide.bindings)
        domains = [list(hide.bindings[name].values()) for name in names]
        inner_universe = self._inner_universe(hide)
        budget = self.max_witness_candidates
        truncated = False

        for copies in range(1, self.max_unroll + 1):
            base = self.lasso.unroll(copies)
            positions = base.length
            per_position = list(itertools.product(*domains))
            total = len(per_position) ** positions
            if total > budget:
                truncated = True
                total = budget
            count = 0
            for assignment in itertools.product(per_position, repeat=positions):
                count += 1
                if count > total:
                    break
                states = [
                    base.states[i].update(dict(zip(names, assignment[i])))
                    for i in range(positions)
                ]
                candidate = Lasso(states, base.loop_start)
                inner = EvalContext(
                    candidate,
                    inner_universe,
                    self.max_unroll,
                    self.max_witness_candidates,
                )
                if inner.eval(hide.body, 0):
                    return True
            budget -= count

        if truncated:
            raise WitnessSearchExhausted(
                f"witness search for {hide!r} exceeded "
                f"{self.max_witness_candidates} candidates"
            )
        return False

    def _inner_universe(self, hide: Hide) -> Optional[Universe]:
        if self.universe is None:
            return Universe(hide.bindings)
        return self.universe.merge(Universe(hide.bindings))


def holds(
    formula: object,
    lasso: Lasso,
    universe: Optional[Universe] = None,
    max_unroll: int = 2,
    max_witness_candidates: int = 500_000,
) -> bool:
    """Truth of *formula* on the infinite behavior denoted by *lasso*."""
    ctx = EvalContext(lasso, universe, max_unroll, max_witness_candidates)
    return ctx.eval(to_tf(formula), 0)


def check_implication_on(
    premises: object,
    conclusion: object,
    lasso: Lasso,
    universe: Optional[Universe] = None,
) -> bool:
    """``premises ⇒ conclusion`` on one lasso (used to validate candidate
    counterexamples produced by the graph-based liveness checker)."""
    ctx = EvalContext(lasso, universe)
    return (not ctx.eval(to_tf(premises), 0)) or ctx.eval(to_tf(conclusion), 0)
