"""Temporal logic layer: formula AST, lasso semantics, finite satisfaction.

The paper-specific operators (``⊳``, ``−▷``, ``+v``, ``⊥``, closure ``C``)
build on this layer and live in :mod:`repro.core`.
"""

from .formulas import (
    ActionBox,
    ActionDiamond,
    Always,
    Eventually,
    Hide,
    Invariant,
    LeadsTo,
    SF,
    StatePred,
    TAnd,
    TEquiv,
    TImplies,
    TNot,
    TOr,
    TemporalFormula,
    WF,
    to_tf,
)
from .semantics import (
    EvalContext,
    WitnessSearchExhausted,
    check_implication_on,
    holds,
)
from .prefix import (
    INFINITE,
    NotSafetyCheckable,
    PrefixContext,
    failure_point,
    holds_for_first,
    prefix_sat,
)

__all__ = [
    "ActionBox",
    "ActionDiamond",
    "Always",
    "Eventually",
    "Hide",
    "Invariant",
    "LeadsTo",
    "SF",
    "StatePred",
    "TAnd",
    "TEquiv",
    "TImplies",
    "TNot",
    "TOr",
    "TemporalFormula",
    "WF",
    "to_tf",
    "EvalContext",
    "WitnessSearchExhausted",
    "check_implication_on",
    "holds",
    "INFINITE",
    "NotSafetyCheckable",
    "PrefixContext",
    "failure_point",
    "holds_for_first",
    "prefix_sat",
]
