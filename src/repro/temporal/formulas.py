"""Temporal formula AST.

TLA formulas are built from state predicates and actions with ``'``, ``□``
and ``∃`` (paper, section 2.1).  The nodes here cover the fragment the
paper uses:

* :class:`StatePred` -- a state predicate as a temporal formula (truth at
  the first state of the behavior);
* :class:`ActionBox` -- ``□[A]_v``, the workhorse of canonical
  specifications;
* :class:`Always`, :class:`Eventually`, :class:`LeadsTo` -- ``□``, ``◇``,
  ``~>`` over temporal formulas;
* :class:`ActionDiamond` -- ``◇<A>_v`` (used in liveness conclusions);
* :class:`WF`, :class:`SF` -- weak/strong fairness on an action;
* :class:`Hide` -- ``∃x : F``, hiding of internal variables with declared
  finite domains (witness search happens in the semantics module);
* Boolean connectives :class:`TNot`, :class:`TAnd`, :class:`TOr`,
  :class:`TImplies`, :class:`TEquiv`.

The paper-specific operators (``⊳``, ``−▷``, ``+v``, ``⊥``, ``C``) live in
:mod:`repro.core.operators`; they plug into the same evaluation protocol.

Every node implements:

* ``eval_at(ctx, pos)`` -- truth at canonical position *pos* of the lasso
  carried by *ctx* (see :mod:`repro.temporal.semantics`);
* ``rename(mapping)`` -- simultaneous variable renaming, the paper's
  ``F[z/o, q1/q]`` used to instantiate the double queue;
* ``vars()`` -- free state variables (hidden variables excluded).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Mapping, Sequence, Tuple

from ..kernel.expr import Const, Expr, Var, to_expr
from ..kernel.action import angle, holds_on_step, square
from ..kernel.values import Domain


class TemporalFormula:
    """Base class for temporal formulas.  Immutable."""

    __slots__ = ()

    # -- semantics ---------------------------------------------------------

    def eval_at(self, ctx: "EvalContext", pos: int) -> bool:  # noqa: F821
        raise NotImplementedError

    # -- structure -----------------------------------------------------------

    def subformulas(self) -> Tuple["TemporalFormula", ...]:
        return ()

    def exprs(self) -> Tuple[Expr, ...]:
        return ()

    def hidden_names(self) -> FrozenSet[str]:
        """Names bound at this node (nonempty only for Hide)."""
        return frozenset()

    def vars(self) -> FrozenSet[str]:
        """Free state variables of the formula."""
        acc: FrozenSet[str] = frozenset()
        for expr in self.exprs():
            acc |= expr.free_vars() | expr.primed_vars()
        for sub in self.subformulas():
            acc |= sub.vars()
        return acc - self.hidden_names()

    def rename(self, mapping: Mapping[str, str]) -> "TemporalFormula":
        """Simultaneous renaming of state variables, including subscripts.

        Hidden variables are renamed too when the mapping mentions them --
        this matches the paper's substitution convention for building
        ``F[1] = F[z/o, q1/q]`` where ``q`` is internal.
        """
        raise NotImplementedError

    def key(self) -> Tuple:
        raise NotImplementedError

    # -- sugar ---------------------------------------------------------------

    def __and__(self, other: "TemporalFormula") -> "TemporalFormula":
        return TAnd(self, to_tf(other))

    def __rand__(self, other: object) -> "TemporalFormula":
        return TAnd(to_tf(other), self)

    def __or__(self, other: "TemporalFormula") -> "TemporalFormula":
        return TOr(self, to_tf(other))

    def __invert__(self) -> "TemporalFormula":
        return TNot(self)

    def implies(self, other: object) -> "TemporalFormula":
        return TImplies(self, to_tf(other))


def to_tf(obj: object) -> TemporalFormula:
    """Coerce an Expr (state predicate), bool, or TemporalFormula to a TF."""
    if isinstance(obj, TemporalFormula):
        return obj
    if isinstance(obj, bool):
        return StatePred(Const(obj))
    if isinstance(obj, Expr):
        if obj.primed_vars():
            raise TypeError(
                f"action expression {obj!r} is not a temporal formula; "
                "wrap it in ActionBox/ActionDiamond/WF/SF"
            )
        return StatePred(obj)
    raise TypeError(f"cannot convert {obj!r} to a temporal formula")


def _rename_expr(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    return expr.substitute({old: Var(new) for old, new in mapping.items()})


def _rename_sub(sub: Tuple[str, ...], mapping: Mapping[str, str]) -> Tuple[str, ...]:
    return tuple(mapping.get(name, name) for name in sub)


class StatePred(TemporalFormula):
    """A state predicate, true of a behavior iff true at its first state."""

    __slots__ = ("pred",)

    def __init__(self, pred: object):
        self.pred = to_expr(pred)
        if self.pred.primed_vars():
            raise TypeError(f"state predicate may not contain primes: {self.pred!r}")

    def eval_at(self, ctx, pos: int) -> bool:
        value = self.pred.eval_state(ctx.lasso.states[pos])
        if not isinstance(value, bool):
            raise TypeError(f"state predicate {self.pred!r} returned {value!r}")
        return value

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.pred,)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return StatePred(_rename_expr(self.pred, mapping))

    def key(self) -> Tuple:
        return ("StatePred", self.pred.key())

    def __repr__(self) -> str:
        return f"StatePred({self.pred!r})"


class ActionBox(TemporalFormula):
    """``□[A]_v``: every step is an A step or leaves ``v`` unchanged."""

    __slots__ = ("action", "sub", "_square")

    def __init__(self, action: object, sub: Sequence[str]):
        self.action = to_expr(action)
        self.sub: Tuple[str, ...] = tuple(sub)
        if not self.sub:
            raise ValueError("ActionBox needs a nonempty subscript tuple v")
        self._square = square(self.action, self.sub)

    def eval_at(self, ctx, pos: int) -> bool:
        lasso = ctx.lasso
        for p, succ in lasso.steps_from(pos):
            if not holds_on_step(self._square, lasso.states[p], lasso.states[succ]):
                return False
        return True

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.action,)

    def vars(self) -> FrozenSet[str]:
        return super().vars() | frozenset(self.sub)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return ActionBox(_rename_expr(self.action, mapping), _rename_sub(self.sub, mapping))

    def key(self) -> Tuple:
        return ("ActionBox", self.action.key(), self.sub)

    def __repr__(self) -> str:
        return f"ActionBox({self.action!r}, sub={self.sub})"


class ActionDiamond(TemporalFormula):
    """``◇<A>_v``: some step is an A step that changes ``v``."""

    __slots__ = ("action", "sub", "_angle")

    def __init__(self, action: object, sub: Sequence[str]):
        self.action = to_expr(action)
        self.sub = tuple(sub)
        if not self.sub:
            raise ValueError("ActionDiamond needs a nonempty subscript tuple v")
        self._angle = angle(self.action, self.sub)

    def eval_at(self, ctx, pos: int) -> bool:
        lasso = ctx.lasso
        for p, succ in lasso.steps_from(pos):
            if holds_on_step(self._angle, lasso.states[p], lasso.states[succ]):
                return True
        return False

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.action,)

    def vars(self) -> FrozenSet[str]:
        return super().vars() | frozenset(self.sub)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return ActionDiamond(_rename_expr(self.action, mapping), _rename_sub(self.sub, mapping))

    def key(self) -> Tuple:
        return ("ActionDiamond", self.action.key(), self.sub)

    def __repr__(self) -> str:
        return f"ActionDiamond({self.action!r}, sub={self.sub})"


class Always(TemporalFormula):
    """``□F``."""

    __slots__ = ("body",)

    def __init__(self, body: object):
        self.body = to_tf(body)

    def eval_at(self, ctx, pos: int) -> bool:
        return all(ctx.eval(self.body, p) for p in ctx.lasso.suffix_positions(pos))

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.body,)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return Always(self.body.rename(mapping))

    def key(self) -> Tuple:
        return ("Always", self.body.key())

    def __repr__(self) -> str:
        return f"Always({self.body!r})"


class Eventually(TemporalFormula):
    """``◇F``."""

    __slots__ = ("body",)

    def __init__(self, body: object):
        self.body = to_tf(body)

    def eval_at(self, ctx, pos: int) -> bool:
        return any(ctx.eval(self.body, p) for p in ctx.lasso.suffix_positions(pos))

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.body,)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return Eventually(self.body.rename(mapping))

    def key(self) -> Tuple:
        return ("Eventually", self.body.key())

    def __repr__(self) -> str:
        return f"Eventually({self.body!r})"


class LeadsTo(TemporalFormula):
    """``F ~> G``, i.e. ``□(F ⇒ ◇G)``."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: object, rhs: object):
        self.lhs = to_tf(lhs)
        self.rhs = to_tf(rhs)

    def eval_at(self, ctx, pos: int) -> bool:
        lasso = ctx.lasso
        for p in lasso.suffix_positions(pos):
            if ctx.eval(self.lhs, p) and not any(
                ctx.eval(self.rhs, q) for q in lasso.suffix_positions(p)
            ):
                return False
        return True

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.lhs, self.rhs)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return LeadsTo(self.lhs.rename(mapping), self.rhs.rename(mapping))

    def key(self) -> Tuple:
        return ("LeadsTo", self.lhs.key(), self.rhs.key())

    def __repr__(self) -> str:
        return f"LeadsTo({self.lhs!r}, {self.rhs!r})"


class WF(TemporalFormula):
    """``WF_v(A)``: infinitely many ``<A>_v`` steps, or infinitely many
    states where ``<A>_v`` is not enabled (paper, section 2.1).

    Fairness only depends on the loop of a lasso, so the value is the same
    at every position.  Computing ``ENABLED <A>_v`` requires the evaluation
    context's universe.
    """

    __slots__ = ("sub", "action", "_angle")

    def __init__(self, sub: Sequence[str], action: object):
        self.sub = tuple(sub)
        self.action = to_expr(action)
        if not self.sub:
            raise ValueError("WF needs a nonempty subscript tuple v")
        self._angle = angle(self.action, self.sub)

    def _loop_has_step(self, ctx) -> bool:
        lasso = ctx.lasso
        return any(
            holds_on_step(self._angle, lasso.states[p], lasso.states[succ])
            for p, succ in lasso.loop_steps()
        )

    def _loop_enabled_flags(self, ctx) -> Iterator[bool]:
        lasso = ctx.lasso
        for p in lasso.loop_positions():
            yield ctx.enabled(self._angle, lasso.states[p])

    def eval_at(self, ctx, pos: int) -> bool:
        if self._loop_has_step(ctx):
            return True
        return any(not flag for flag in self._loop_enabled_flags(ctx))

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.action,)

    def vars(self) -> FrozenSet[str]:
        return super().vars() | frozenset(self.sub)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return type(self)(_rename_sub(self.sub, mapping), _rename_expr(self.action, mapping))

    def key(self) -> Tuple:
        return (type(self).__name__, self.sub, self.action.key())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(sub={self.sub}, {self.action!r})"


class SF(WF):
    """``SF_v(A)``: infinitely many ``<A>_v`` steps, or only finitely many
    states where ``<A>_v`` is enabled."""

    __slots__ = ()

    def eval_at(self, ctx, pos: int) -> bool:
        if self._loop_has_step(ctx):
            return True
        return not any(self._loop_enabled_flags(ctx))


class TNot(TemporalFormula):
    __slots__ = ("body",)

    def __init__(self, body: object):
        self.body = to_tf(body)

    def eval_at(self, ctx, pos: int) -> bool:
        return not ctx.eval(self.body, pos)

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.body,)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return TNot(self.body.rename(mapping))

    def key(self) -> Tuple:
        return ("TNot", self.body.key())

    def __repr__(self) -> str:
        return f"TNot({self.body!r})"


class _TNary(TemporalFormula):
    __slots__ = ("parts",)

    def __init__(self, *parts: object):
        flat = []
        for part in parts:
            tf = to_tf(part)
            if isinstance(tf, type(self)):
                flat.extend(tf.parts)
            else:
                flat.append(tf)
        self.parts: Tuple[TemporalFormula, ...] = tuple(flat)

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return self.parts

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return type(self)(*[part.rename(mapping) for part in self.parts])

    def key(self) -> Tuple:
        return (type(self).__name__,) + tuple(part.key() for part in self.parts)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(" + ", ".join(map(repr, self.parts)) + ")"


class TAnd(_TNary):
    __slots__ = ()

    def eval_at(self, ctx, pos: int) -> bool:
        return all(ctx.eval(part, pos) for part in self.parts)


class TOr(_TNary):
    __slots__ = ()

    def eval_at(self, ctx, pos: int) -> bool:
        return any(ctx.eval(part, pos) for part in self.parts)


class TImplies(TemporalFormula):
    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: object, rhs: object):
        self.lhs = to_tf(lhs)
        self.rhs = to_tf(rhs)

    def eval_at(self, ctx, pos: int) -> bool:
        return (not ctx.eval(self.lhs, pos)) or ctx.eval(self.rhs, pos)

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.lhs, self.rhs)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return TImplies(self.lhs.rename(mapping), self.rhs.rename(mapping))

    def key(self) -> Tuple:
        return ("TImplies", self.lhs.key(), self.rhs.key())

    def __repr__(self) -> str:
        return f"TImplies({self.lhs!r}, {self.rhs!r})"


class TEquiv(TemporalFormula):
    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: object, rhs: object):
        self.lhs = to_tf(lhs)
        self.rhs = to_tf(rhs)

    def eval_at(self, ctx, pos: int) -> bool:
        return ctx.eval(self.lhs, pos) == ctx.eval(self.rhs, pos)

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.lhs, self.rhs)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        return TEquiv(self.lhs.rename(mapping), self.rhs.rename(mapping))

    def key(self) -> Tuple:
        return ("TEquiv", self.lhs.key(), self.rhs.key())

    def __repr__(self) -> str:
        return f"TEquiv({self.lhs!r}, {self.rhs!r})"


class Hide(TemporalFormula):
    """``∃ x1, ..., xk : F`` -- existential quantification over flexible
    (state) variables: "F with x hidden" (paper, section 2.1).

    Each hidden variable carries a finite :class:`Domain` so the semantics
    module can search for a witness sequence of values.  Evaluation is only
    supported at position 0 (top level); the uses in the paper are all at
    top level, and suffix-evaluation of ``∃`` would require re-anchoring
    the witness search.
    """

    __slots__ = ("bindings", "body")

    def __init__(self, bindings: Mapping[str, Domain], body: object):
        if not bindings:
            raise ValueError("Hide needs at least one hidden variable")
        self.bindings: Dict[str, Domain] = dict(bindings)
        self.body = to_tf(body)

    def eval_at(self, ctx, pos: int) -> bool:
        if pos != 0:
            raise NotImplementedError(
                "Hide (∃) evaluation is only supported at position 0; "
                "rotate the lasso if you need a suffix"
            )
        return ctx.search_witness(self)

    def subformulas(self) -> Tuple[TemporalFormula, ...]:
        return (self.body,)

    def hidden_names(self) -> FrozenSet[str]:
        return frozenset(self.bindings)

    def rename(self, mapping: Mapping[str, str]) -> TemporalFormula:
        new_bindings = {mapping.get(name, name): dom for name, dom in self.bindings.items()}
        if len(new_bindings) != len(self.bindings):
            raise ValueError(f"renaming {mapping!r} collapses hidden variables")
        return Hide(new_bindings, self.body.rename(mapping))

    def key(self) -> Tuple:
        from ..kernel.values import domain_key

        return ("Hide",
                tuple((name, domain_key(dom))
                      for name, dom in sorted(self.bindings.items())),
                self.body.key())

    def __repr__(self) -> str:
        return f"Hide({sorted(self.bindings)}, {self.body!r})"


def Invariant(pred: object) -> Always:
    """``□P`` for a state predicate P -- convenience constructor."""
    return Always(StatePred(to_expr(pred)))
