"""Action toolkit: ``[A]_v``, ``<A>_v``, ``UNCHANGED``, ``ENABLED``, and a
compiler from actions to an efficient successor-state generator.

An action is a Boolean :class:`~repro.kernel.expr.Expr` over primed and
unprimed variables.  Semantically it is a relation on state pairs; the model
checker needs, for a given state ``s``, the set ``{t | A(s, t)}`` of
successors.  Enumerating *all* states ``t`` of the universe and filtering is
correct but exponential; almost all actions in practice are (disjunctions
of) conjunctions containing equations ``x' = e`` with ``e`` prime-free,
which *determine* the successor.  :func:`compile_action` normalises an
action into :class:`Branch` objects -- bindings (determined primed
variables) plus residual constraints -- and :func:`successors` enumerates
only the genuinely undetermined primed variables.  This mirrors what the
TLC model checker does for TLA+.

The compilation is a pure optimisation: :func:`successors` falls back to
domain enumeration for whatever a branch leaves undetermined, so every
action in the value model is handled, just more or less quickly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .expr import (
    And,
    Const,
    Env,
    Eq,
    EvalError,
    Exists,
    Expr,
    Not,
    Or,
    TupleExpr,
    Var,
    to_expr,
)
from .state import State, Universe


def unchanged(names: Iterable[str]) -> Expr:
    """``UNCHANGED <<names>>``: each variable keeps its value over the step."""
    names = tuple(names)
    if not names:
        return Const(True)
    return And(*[Eq(Var(name, primed=True), Var(name)) for name in names])


def changed(names: Iterable[str]) -> Expr:
    """At least one of the variables changes over the step."""
    return Not(unchanged(names))


def square(action: object, sub: Iterable[str]) -> Expr:
    """The paper's ``[A]_v``: an ``A`` step or a step leaving ``v`` unchanged."""
    return Or(to_expr(action), unchanged(sub))


def angle(action: object, sub: Iterable[str]) -> Expr:
    """``<A>_v``: an ``A`` step that changes ``v``."""
    return And(to_expr(action), changed(sub))


class Branch:
    """One disjunct of a compiled action.

    * ``bindings`` maps primed-variable names to *prime-free* expressions
      over the pre-state that determine their post-value.
    * ``binding_checks`` are additional determinations of already-bound
      variables (arising when conjuncts both pin ``x'``); they are checked
      against the bound value *before* a candidate state is built, which
      kills conflicting branches cheaply.
    * ``constraints`` are residual Boolean expressions evaluated over the
      full step once a candidate post-state is assembled.
    """

    __slots__ = ("bindings", "binding_checks", "constraints")

    def __init__(
        self,
        bindings: Dict[str, Expr],
        constraints: List[Expr],
        binding_checks: Optional[List[Tuple[str, Expr]]] = None,
    ):
        self.bindings = bindings
        self.constraints = constraints
        self.binding_checks = binding_checks or []

    def primed_in_constraints(self) -> FrozenSet[str]:
        acc: FrozenSet[str] = frozenset()
        for constraint in self.constraints:
            acc |= constraint.primed_vars()
        return acc

    def __repr__(self) -> str:
        return (f"Branch(bindings={sorted(self.bindings)}, "
                f"checks={len(self.binding_checks)}, "
                f"constraints={len(self.constraints)})")


def _merge(lhs: Branch, rhs: Branch) -> Branch:
    """Conjoin two branches; duplicate bindings become fail-fast checks."""
    bindings = dict(lhs.bindings)
    constraints = list(lhs.constraints) + list(rhs.constraints)
    checks = list(lhs.binding_checks) + list(rhs.binding_checks)
    for name, expr in rhs.bindings.items():
        if name in bindings:
            checks.append((name, expr))
        else:
            bindings[name] = expr
    return Branch(bindings, constraints, checks)


def _as_binding(lhs: Expr, rhs: Expr) -> Optional[Tuple[str, Expr]]:
    """Recognise ``x' = e`` (either orientation) with prime-free ``e``."""
    for a, b in ((lhs, rhs), (rhs, lhs)):
        if isinstance(a, Var) and a.primed and not b.primed_vars():
            return a.name, b
    return None


_MAX_BRANCHES = 4096


_BRANCH_BUDGET = 128


def _compile(expr: Expr) -> List[Branch]:
    if isinstance(expr, And):
        compiled = [(conjunct, _compile(conjunct)) for conjunct in expr.args]
        # merge cheap conjuncts first; once the distributed product would
        # exceed the budget, keep further conjuncts as opaque constraints
        # checked per candidate (sound: a constraint is just an unmerged
        # conjunct).  This is what keeps products with Disjoint conditions
        # from exploding into thousands of branches.
        compiled.sort(key=lambda pair: len(pair[1]))
        branches = [Branch({}, [])]
        for conjunct, sub in compiled:
            if len(branches) > 1 and len(sub) > 1 and \
                    len(branches) * len(sub) > _BRANCH_BUDGET:
                branches = [
                    Branch(b.bindings, b.constraints + [conjunct],
                           list(b.binding_checks))
                    for b in branches
                ]
                continue
            branches = [_merge(b, s) for b in branches for s in sub]
            if len(branches) > _MAX_BRANCHES:
                return [Branch({}, [expr])]
        return branches
    if isinstance(expr, Or):
        branches: List[Branch] = []
        for disjunct in expr.args:
            branches.extend(_compile(disjunct))
        if len(branches) > _MAX_BRANCHES:
            return [Branch({}, [expr])]
        return branches
    if isinstance(expr, Eq):
        lhs, rhs = expr.args
        binding = _as_binding(lhs, rhs)
        if binding is not None:
            name, value_expr = binding
            return [Branch({name: value_expr}, [])]
        # destructure <<a', b'>> = <<x, y>> elementwise
        if (
            isinstance(lhs, TupleExpr)
            and isinstance(rhs, TupleExpr)
            and len(lhs.args) == len(rhs.args)
        ):
            return _compile(And(*[Eq(a, b) for a, b in zip(lhs.args, rhs.args)]))
        return [Branch({}, [expr])]
    if isinstance(expr, Exists):
        branches = []
        for value in expr.domain.values():
            instantiated = expr.body.substitute({expr.var: Const(value)})
            branches.extend(_compile(instantiated))
            if len(branches) > _MAX_BRANCHES:
                return [Branch({}, [expr])]
        return branches
    if isinstance(expr, Const):
        if expr.value is True:
            return [Branch({}, [])]
        if expr.value is False:
            return []
    return [Branch({}, [expr])]


class CompiledAction:
    """The compiled form of one action, cached by the explorer.

    ``frame`` is the set of universe variables whose post-value the action
    can constrain; any universe variable never mentioned primed in the
    action is unconstrained and must be enumerated by the caller -- see
    :func:`successors`.
    """

    __slots__ = ("action", "branches")

    def __init__(self, action: Expr):
        self.action = to_expr(action)
        self.branches = _compile(self.action)


_COMPILE_CACHE: Dict[int, CompiledAction] = {}


def compile_action(action: Expr) -> CompiledAction:
    """Compile (with an identity-keyed cache) an action expression."""
    cached = _COMPILE_CACHE.get(id(action))
    if cached is None or cached.action is not action:
        cached = CompiledAction(action)
        _COMPILE_CACHE[id(action)] = cached
    return cached


def _enumerate_post(
    state: State,
    universe: Universe,
    branch: Branch,
    relevant: Sequence[str],
) -> Iterator[State]:
    """Yield candidate post-states for one branch.

    *relevant* lists the universe variables the post-state ranges over;
    variables outside *relevant* keep their pre-state value (they are the
    universe variables the caller has declared untouched).
    """
    env0 = Env(state)
    determined: Dict[str, object] = {}
    for name, expr in branch.bindings.items():
        if name not in universe:
            # binding for a variable outside the universe: nothing to
            # determine (the variable does not exist in this model)
            continue
        try:
            value = expr.eval(env0)
        except EvalError:
            return  # binding unevaluable in this state => branch disabled
        if value not in universe.domain(name):
            return  # post-value escapes the domain => no successor here
        determined[name] = value

    # fail fast: conflicting determinations kill the branch before any
    # candidate state is built
    for name, expr in branch.binding_checks:
        if name not in determined:
            continue
        try:
            if expr.eval(env0) != determined[name]:
                return
        except EvalError:
            return

    free = [name for name in relevant if name not in determined]

    base: Dict[str, object] = dict(state)
    base.update(determined)

    def rec(index: int) -> Iterator[State]:
        if index == len(free):
            candidate = State._trusted(dict(base))
            env = Env(state, candidate)
            try:
                if all(constraint.holds(env) for constraint in branch.constraints):
                    yield candidate
            except EvalError:
                pass  # a type error on this candidate: not a step
            return
        name = free[index]
        for value in universe.domain(name).values():
            base[name] = value
            yield from rec(index + 1)
        base[name] = state[name]

    yield from rec(0)


def successors(
    action: Expr,
    state: State,
    universe: Universe,
    frame: Optional[Iterable[str]] = None,
) -> Iterator[State]:
    """Enumerate the post-states ``t`` with ``action(state, t)``.

    *frame* is the set of variables allowed to differ from the pre-state;
    it defaults to every variable of the universe.  Passing the
    specification's subscript tuple ``v`` as the frame implements the
    ``[A]_v`` convention that everything else is somebody else's business
    (but note ``[A]_v`` itself should then be passed as the action if
    stuttering steps are wanted).

    Duplicate post-states (reachable through several branches) are emitted
    once.
    """
    compiled = compile_action(action)
    if frame is None:
        relevant: Tuple[str, ...] = universe.variables
    else:
        relevant = tuple(name for name in universe.variables if name in set(frame))
    seen = set()
    for branch in compiled.branches:
        # variables outside the frame must be unchanged: any binding or
        # constraint violating that is filtered by the equality check below.
        for candidate in _enumerate_post(state, universe, branch, relevant):
            ok = True
            for name in universe.variables:
                if name not in relevant and candidate[name] != state[name]:
                    ok = False
                    break
            if ok and candidate not in seen:
                seen.add(candidate)
                yield candidate


def enabled(action: Expr, state: State, universe: Universe,
            frame: Optional[Iterable[str]] = None) -> bool:
    """The paper's ENABLED: does some state ``t`` make ``(state, t)`` an
    *action* step?"""
    for _ in successors(action, state, universe, frame):
        return True
    return False


def holds_on_step(action: Expr, current: State, next_state: State) -> bool:
    """Evaluate an action on an explicit step."""
    return to_expr(action).holds(Env(current, next_state))
