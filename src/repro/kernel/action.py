"""Action toolkit: ``[A]_v``, ``<A>_v``, ``UNCHANGED``, ``ENABLED``, and a
compiler from actions to an efficient successor-state generator.

An action is a Boolean :class:`~repro.kernel.expr.Expr` over primed and
unprimed variables.  Semantically it is a relation on state pairs; the model
checker needs, for a given state ``s``, the set ``{t | A(s, t)}`` of
successors.  Enumerating *all* states ``t`` of the universe and filtering is
correct but exponential; almost all actions in practice are (disjunctions
of) conjunctions containing equations ``x' = e`` with ``e`` prime-free,
which *determine* the successor.  :func:`compile_action` normalises an
action into :class:`Branch` objects -- bindings (determined primed
variables) plus residual constraints -- and :func:`successors` enumerates
only the genuinely undetermined primed variables.  This mirrors what the
TLC model checker does for TLA+.

The compilation is a pure optimisation: :func:`successors` falls back to
domain enumeration for whatever a branch leaves undetermined, so every
action in the value model is handled, just more or less quickly.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .expr import (
    And,
    Const,
    Env,
    Eq,
    EvalError,
    Exists,
    Expr,
    Not,
    Or,
    TupleExpr,
    Var,
    to_expr,
)
from .state import State, Universe


def unchanged(names: Iterable[str]) -> Expr:
    """``UNCHANGED <<names>>``: each variable keeps its value over the step."""
    names = tuple(names)
    if not names:
        return Const(True)
    return And(*[Eq(Var(name, primed=True), Var(name)) for name in names])


def changed(names: Iterable[str]) -> Expr:
    """At least one of the variables changes over the step."""
    return Not(unchanged(names))


def square(action: object, sub: Iterable[str]) -> Expr:
    """The paper's ``[A]_v``: an ``A`` step or a step leaving ``v`` unchanged."""
    return Or(to_expr(action), unchanged(sub))


def angle(action: object, sub: Iterable[str]) -> Expr:
    """``<A>_v``: an ``A`` step that changes ``v``."""
    return And(to_expr(action), changed(sub))


class Branch:
    """One disjunct of a compiled action.

    * ``bindings`` maps primed-variable names to *prime-free* expressions
      over the pre-state that determine their post-value.
    * ``binding_checks`` are additional determinations of already-bound
      variables (arising when conjuncts both pin ``x'``); they are checked
      against the bound value *before* a candidate state is built, which
      kills conflicting branches cheaply.
    * ``constraints`` are residual Boolean expressions evaluated over the
      full step once a candidate post-state is assembled.
    """

    __slots__ = ("bindings", "binding_checks", "constraints")

    def __init__(
        self,
        bindings: Dict[str, Expr],
        constraints: List[Expr],
        binding_checks: Optional[List[Tuple[str, Expr]]] = None,
    ):
        self.bindings = bindings
        self.constraints = constraints
        self.binding_checks = binding_checks or []

    def primed_in_constraints(self) -> FrozenSet[str]:
        acc: FrozenSet[str] = frozenset()
        for constraint in self.constraints:
            acc |= constraint.primed_vars()
        return acc

    def __repr__(self) -> str:
        return (f"Branch(bindings={sorted(self.bindings)}, "
                f"checks={len(self.binding_checks)}, "
                f"constraints={len(self.constraints)})")


def _merge(lhs: Branch, rhs: Branch) -> Branch:
    """Conjoin two branches; duplicate bindings become fail-fast checks."""
    bindings = dict(lhs.bindings)
    constraints = list(lhs.constraints) + list(rhs.constraints)
    checks = list(lhs.binding_checks) + list(rhs.binding_checks)
    for name, expr in rhs.bindings.items():
        if name in bindings:
            checks.append((name, expr))
        else:
            bindings[name] = expr
    return Branch(bindings, constraints, checks)


def _as_binding(lhs: Expr, rhs: Expr) -> Optional[Tuple[str, Expr]]:
    """Recognise ``x' = e`` (either orientation) with prime-free ``e``."""
    for a, b in ((lhs, rhs), (rhs, lhs)):
        if isinstance(a, Var) and a.primed and not b.primed_vars():
            return a.name, b
    return None


_MAX_BRANCHES = 4096


_BRANCH_BUDGET = 128


def _compile(expr: Expr) -> List[Branch]:
    if isinstance(expr, And):
        compiled = [(conjunct, _compile(conjunct)) for conjunct in expr.args]
        # merge cheap conjuncts first; once the distributed product would
        # exceed the budget, keep further conjuncts as opaque constraints
        # checked per candidate (sound: a constraint is just an unmerged
        # conjunct).  This is what keeps products with Disjoint conditions
        # from exploding into thousands of branches.
        compiled.sort(key=lambda pair: len(pair[1]))
        branches = [Branch({}, [])]
        for conjunct, sub in compiled:
            if len(branches) > 1 and len(sub) > 1 and \
                    len(branches) * len(sub) > _BRANCH_BUDGET:
                branches = [
                    Branch(b.bindings, b.constraints + [conjunct],
                           list(b.binding_checks))
                    for b in branches
                ]
                continue
            branches = [_merge(b, s) for b in branches for s in sub]
            if len(branches) > _MAX_BRANCHES:
                return [Branch({}, [expr])]
        return branches
    if isinstance(expr, Or):
        branches: List[Branch] = []
        for disjunct in expr.args:
            branches.extend(_compile(disjunct))
        if len(branches) > _MAX_BRANCHES:
            return [Branch({}, [expr])]
        return branches
    if isinstance(expr, Eq):
        lhs, rhs = expr.args
        binding = _as_binding(lhs, rhs)
        if binding is not None:
            name, value_expr = binding
            return [Branch({name: value_expr}, [])]
        # destructure <<a', b'>> = <<x, y>> elementwise
        if (
            isinstance(lhs, TupleExpr)
            and isinstance(rhs, TupleExpr)
            and len(lhs.args) == len(rhs.args)
        ):
            return _compile(And(*[Eq(a, b) for a, b in zip(lhs.args, rhs.args)]))
        return [Branch({}, [expr])]
    if isinstance(expr, Exists):
        branches = []
        for value in expr.domain.values():
            instantiated = expr.body.substitute({expr.var: Const(value)})
            branches.extend(_compile(instantiated))
            if len(branches) > _MAX_BRANCHES:
                return [Branch({}, [expr])]
        return branches
    if isinstance(expr, Const):
        if expr.value is True:
            return [Branch({}, [])]
        if expr.value is False:
            return []
    return [Branch({}, [expr])]


_EXPAND_CAP = 512

#: one expansion level peels one opaque conjunct, so a product of k
#: component specs (certificate products conjoin every device plus the
#: Disjoint spec) needs about k levels before its branches determine
#: every primed variable
_EXPAND_DEPTH = 8

#: total refined sub-plans per SuccessorPlan; past this, remaining free
#: variables fall back to domain enumeration (same successors, same order)
_EXPAND_TOTAL = 65536


class _BranchPlan:
    """One branch of a :class:`SuccessorPlan`: the per-state work of
    :class:`Branch`, with everything that depends only on the universe and
    frame hoisted out of the per-state loop.

    * ``bindings`` -- ``(name, expr, domain)`` for each determined primed
      variable declared in the universe (domain looked up once);
    * ``checks`` -- the fail-fast re-determinations whose target variable
      is actually determined by this branch;
    * ``fixed_bound`` -- determined variables *outside* the frame: their
      computed post-value must equal the pre-state value, or the branch
      contributes nothing for this state;
    * ``free_names``/``free_values`` -- the undetermined frame variables
      and their domain value tuples, enumerated by product;
    * ``pre_constraints``/``step_constraints`` -- the residual constraints
      split by whether they mention primed variables: a prime-free
      constraint depends only on the pre-state, so it is evaluated once
      per (state, branch) *before* any candidate is assembled, killing
      disabled branches for the price of one guard evaluation;
    * ``expanded`` -- when the branch has free variables but one of its
      opaque constraints compiles into sub-branches that determine them
      (the shape the ``_BRANCH_BUDGET`` cutoff in :func:`_compile`
      produces for large component products), the refined sub-plans.
      Successors are then generated from the sub-plans and emitted in the
      free-variable *domain-product order* -- exactly the sequence the
      unexpanded enumeration would have produced, so node numbering and
      every downstream golden artifact are unchanged; the expansion is a
      pure optimisation replacing domain enumeration with evaluation.
    """

    __slots__ = ("bindings", "checks", "fixed_bound", "free_names",
                 "free_values", "free_index", "free_needed",
                 "pre_constraints", "step_constraints", "expanded")

    def __init__(self, branch: Branch, universe: "Universe",
                 relevant: Sequence[str], depth: int = 0,
                 budget: Optional[List[int]] = None):
        self.bindings: Tuple[Tuple[str, Expr, object], ...] = tuple(
            (name, expr, universe.domain(name))
            for name, expr in branch.bindings.items()
            if name in universe
        )
        determined = {name for name, _expr, _dom in self.bindings}
        self.checks: Tuple[Tuple[str, Expr], ...] = tuple(
            (name, expr) for name, expr in branch.binding_checks
            if name in determined
        )
        relevant_set = set(relevant)
        self.fixed_bound: Tuple[str, ...] = tuple(
            name for name in determined if name not in relevant_set
        )
        free = [name for name in relevant if name not in determined]
        self.free_names: Tuple[str, ...] = tuple(free)
        self.free_values: Tuple[Tuple[object, ...], ...] = tuple(
            tuple(universe.domain(name).values()) for name in free
        )
        self.free_index: Tuple[Dict[object, int], ...] = tuple(
            {value: idx for idx, value in enumerate(values)}
            for values in self.free_values
        )
        constraints = tuple(branch.constraints)
        self.pre_constraints: Tuple[Expr, ...] = tuple(
            c for c in constraints if not c.primed_vars()
        )
        self.step_constraints: Tuple[Expr, ...] = tuple(
            c for c in constraints if c.primed_vars()
        )
        mentioned: set = set()
        for c in self.step_constraints:
            mentioned |= c.primed_vars()
        self.free_needed: Tuple[int, ...] = tuple(
            idx for idx, name in enumerate(self.free_names)
            if name in mentioned
        )
        self.expanded: Optional[Tuple["_BranchPlan", ...]] = None
        if free and depth < _EXPAND_DEPTH:
            self.expanded = self._expand(branch, universe, relevant, depth,
                                         budget)

    def _expand(self, branch: Branch, universe: "Universe",
                relevant: Sequence[str], depth: int,
                budget: Optional[List[int]]) -> Optional[Tuple["_BranchPlan", ...]]:
        """Refine this branch through the opaque constraint whose own
        compiled sub-branches determine the most free variables."""
        free_set = set(self.free_names)
        best: Optional[Tuple[int, Expr, List[Branch]]] = None
        for constraint in branch.constraints:
            if not constraint.primed_vars():
                continue  # a guard determines nothing
            sub = _compile(constraint)
            if not 0 < len(sub) <= _EXPAND_CAP:
                continue
            coverage = min(
                (len(free_set & set(s.bindings)) for s in sub), default=0
            )
            if coverage < 1:
                continue
            if best is None or coverage > best[0]:
                best = (coverage, constraint, sub)
        if best is None:
            return None
        _coverage, chosen, sub = best
        if budget is not None:
            if budget[0] < len(sub):
                return None  # plan-table cap: fall back to enumeration
            budget[0] -= len(sub)
        rest = Branch(
            branch.bindings,
            [c for c in branch.constraints if c is not chosen],
            list(branch.binding_checks),
        )
        return tuple(
            _BranchPlan(_merge(rest, sub_branch), universe, relevant,
                        depth + 1, budget)
            for sub_branch in sub
        )

    @property
    def constraints(self) -> Tuple[Expr, ...]:
        """All residual constraints (the pre/step split re-joined) --
        consumed by the packed engine, which does its own splitting.  A
        packed plan built from an *expanded* branch falls back to free
        enumeration, which emits survivors in domain-product order: the
        identical sequence the expansion produces."""
        return self.pre_constraints + self.step_constraints

    def rank(self, candidate: "State") -> Tuple[int, ...]:
        """The candidate's position in this branch's free-variable
        domain-product enumeration order."""
        return tuple(
            index[candidate[name]]
            for name, index in zip(self.free_names, self.free_index)
        )


class SuccessorPlan:
    """A compiled action specialised to one universe and frame.

    Built once per ``explore()``/``check_*`` run (via
    :meth:`CompiledAction.plan`) and then driven per state; all domain
    lookups, membership tests, and free-variable analyses happen at build
    time, so :meth:`successors` only evaluates expressions.
    """

    __slots__ = ("compiled", "universe", "relevant", "branch_plans")

    def __init__(self, compiled: "CompiledAction", universe: "Universe",
                 frame: Optional[Iterable[str]] = None):
        self.compiled = compiled
        self.universe = universe
        if frame is None:
            self.relevant: Tuple[str, ...] = universe.variables
        else:
            wanted = set(frame)
            self.relevant = tuple(
                name for name in universe.variables if name in wanted
            )
        budget = [_EXPAND_TOTAL]
        self.branch_plans: Tuple[_BranchPlan, ...] = tuple(
            _BranchPlan(branch, universe, self.relevant, budget=budget)
            for branch in compiled.branches
        )

    def successors(self, state: State) -> Iterator[State]:
        """Enumerate the post-states ``t`` with ``action(state, t)``,
        each emitted once."""
        seen = set()
        env0 = Env(state)
        pre = state._map  # direct dict access: skip the Mapping ABC
        for plan in self.branch_plans:
            if plan.expanded is not None:
                # refined sub-plans replace free-domain enumeration; emit
                # in the domain-product order the enumeration would use
                collected: Dict[State, Tuple[int, ...]] = {}
                for sub_plan in plan.expanded:
                    for candidate in self._candidates(sub_plan, state,
                                                      env0, pre):
                        if candidate not in collected:
                            collected[candidate] = plan.rank(candidate)
                for candidate in sorted(collected, key=collected.get):
                    if candidate not in seen:
                        seen.add(candidate)
                        yield candidate
                continue
            for candidate in self._candidates(plan, state, env0, pre):
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate

    def _candidates(self, plan: _BranchPlan, state: State, env0: Env,
                    pre: Dict[str, object]) -> Iterator[State]:
        """One branch's passing candidates, in its free-variable
        domain-product order (sub-plan results re-ranked by the caller)."""
        for constraint in plan.pre_constraints:
            try:
                if not constraint.holds(env0):
                    return
            except EvalError:
                return  # unevaluable guard on this state: branch disabled
        determined: Dict[str, object] = {}
        for name, expr, domain in plan.bindings:
            try:
                value = expr.eval(env0)
            except EvalError:
                return  # binding unevaluable => branch disabled
            if value not in domain:
                return  # post-value escapes the domain
            determined[name] = value
        for name, expr in plan.checks:
            try:
                if expr.eval(env0) != determined[name]:
                    return
            except EvalError:
                return
        for name in plan.fixed_bound:
            if determined[name] != pre[name]:
                return  # out-of-frame variable must not change

        base: Dict[str, object] = dict(pre)
        base.update(determined)
        if plan.expanded is not None:
            collected: Dict[State, Tuple[int, ...]] = {}
            for sub_plan in plan.expanded:
                for candidate in self._candidates(sub_plan, state, env0, pre):
                    if candidate not in collected:
                        collected[candidate] = plan.rank(candidate)
            for candidate in sorted(collected, key=collected.get):
                yield candidate
            return
        if not plan.free_names:
            candidate = State._trusted(base)
            if self._constraints_hold(plan, state, candidate):
                yield candidate
            return
        names = plan.free_names
        for combo in itertools.product(*plan.free_values):
            for name, value in zip(names, combo):
                base[name] = value
            candidate = State._trusted(dict(base))
            if self._constraints_hold(plan, state, candidate):
                yield candidate

    @staticmethod
    def _constraints_hold(plan: _BranchPlan, state: State,
                          candidate: State) -> bool:
        if not plan.step_constraints:
            return True
        env = Env(state, candidate)
        try:
            return all(c.holds(env) for c in plan.step_constraints)
        except EvalError:
            return False  # a type error on this candidate: not a step

    def enabled(self, state: State) -> bool:
        """The paper's ENABLED: does *some* post-state make a step?

        Existence needs one witness, not the enumeration
        :meth:`successors` performs: a free variable that no step
        constraint mentions can take any in-domain value, so it is pinned
        (to its pre-state value) rather than enumerated.  This is what
        makes ``ENABLED <N_i>_{v_i}`` queries on a many-component product
        tractable -- the other components' variables are free-but-
        unconstrained there, and enumerating them would be exponential in
        the number of components."""
        env0 = Env(state)
        pre = state._map
        return any(self._branch_enabled(plan, state, env0, pre)
                   for plan in self.branch_plans)

    def _branch_enabled(self, plan: _BranchPlan, state: State, env0: Env,
                        pre: Dict[str, object]) -> bool:
        for constraint in plan.pre_constraints:
            try:
                if not constraint.holds(env0):
                    return False
            except EvalError:
                return False
        determined: Dict[str, object] = {}
        for name, expr, domain in plan.bindings:
            try:
                value = expr.eval(env0)
            except EvalError:
                return False
            if value not in domain:
                return False
            determined[name] = value
        for name, expr in plan.checks:
            try:
                if expr.eval(env0) != determined[name]:
                    return False
            except EvalError:
                return False
        for name in plan.fixed_bound:
            if determined[name] != pre[name]:
                return False
        if plan.expanded is not None:
            return any(self._branch_enabled(sub, state, env0, pre)
                       for sub in plan.expanded)
        base: Dict[str, object] = dict(pre)
        base.update(determined)
        if not plan.free_names:
            return self._constraints_hold(plan, state, State._trusted(base))
        needed = set(plan.free_needed)
        for idx, name in enumerate(plan.free_names):
            if idx in needed:
                continue
            if name not in pre or pre[name] not in plan.free_index[idx]:
                base[name] = plan.free_values[idx][0]
        if not needed:
            return self._constraints_hold(plan, state,
                                          State._trusted(base))
        needed_names = [plan.free_names[i] for i in plan.free_needed]
        needed_values = [plan.free_values[i] for i in plan.free_needed]
        for combo in itertools.product(*needed_values):
            for name, value in zip(needed_names, combo):
                base[name] = value
            if self._constraints_hold(plan, state,
                                      State._trusted(dict(base))):
                return True
        return False


class CompiledAction:
    """The compiled form of one action, cached by the explorer.

    :meth:`plan` specialises the branches to a universe and frame,
    yielding a :class:`SuccessorPlan`; any universe variable never
    mentioned primed in the action is unconstrained and must be
    enumerated -- see :func:`successors`.
    """

    __slots__ = ("action", "branches", "_plans")

    def __init__(self, action: Expr):
        self.action = to_expr(action)
        self.branches = _compile(self.action)
        self._plans: Dict[Tuple[object, Optional[FrozenSet[str]]],
                          SuccessorPlan] = {}

    def plan(self, universe: "Universe",
             frame: Optional[Iterable[str]] = None) -> SuccessorPlan:
        """The (cached) successor-enumeration plan for *universe*/*frame*.

        Keyed by universe identity -- the universe object itself is held as
        the key, so the id cannot be recycled under us.
        """
        key = (universe, None if frame is None else frozenset(frame))
        cached = self._plans.get(key)
        if cached is None:
            if len(self._plans) > 16:  # bound a pathological caller
                self._plans.clear()
            cached = SuccessorPlan(self, universe, frame)
            self._plans[key] = cached
        return cached


_COMPILE_CACHE: Dict[int, CompiledAction] = {}


def compile_action(action: Expr) -> CompiledAction:
    """Compile (with an identity-keyed cache) an action expression."""
    cached = _COMPILE_CACHE.get(id(action))
    if cached is None or cached.action is not action:
        cached = CompiledAction(action)
        _COMPILE_CACHE[id(action)] = cached
    return cached


def successors(
    action: Expr,
    state: State,
    universe: Universe,
    frame: Optional[Iterable[str]] = None,
) -> Iterator[State]:
    """Enumerate the post-states ``t`` with ``action(state, t)``.

    *frame* is the set of variables allowed to differ from the pre-state;
    it defaults to every variable of the universe.  Passing the
    specification's subscript tuple ``v`` as the frame implements the
    ``[A]_v`` convention that everything else is somebody else's business
    (but note ``[A]_v`` itself should then be passed as the action if
    stuttering steps are wanted).

    Duplicate post-states (reachable through several branches) are emitted
    once.  This is the convenience wrapper; hot loops should build the
    :class:`SuccessorPlan` once and drive it directly.
    """
    return compile_action(action).plan(universe, frame).successors(state)


def enabled(action: Expr, state: State, universe: Universe,
            frame: Optional[Iterable[str]] = None) -> bool:
    """The paper's ENABLED: does some state ``t`` make ``(state, t)`` an
    *action* step?"""
    return compile_action(action).plan(universe, frame).enabled(state)


def holds_on_step(action: Expr, current: State, next_state: State) -> bool:
    """Evaluate an action on an explicit step."""
    return to_expr(action).holds(Env(current, next_state))
