"""Value model and finite domains for the TLA kernel.

TLA is untyped: a state assigns an arbitrary value to every variable.  For
explicit-state model checking we restrict attention to a small zoo of
*hashable, immutable* Python values:

* ``bool`` and ``int`` (bits in the handshake protocol are the ints 0/1),
* ``str`` (useful for control states),
* ``tuple`` (TLA sequences -- the queue contents ``q`` is a tuple),
* ``frozenset`` (TLA finite sets, rarely needed but supported).

A :class:`Domain` describes the finite set of values a variable may take.
Domains are needed in exactly two places:

* enumerating the successors of a state under an action whose primed
  variables are not fully determined by equations, and
* computing ``ENABLED`` predicates (and hence ``WF``/``SF`` fairness).

Domains are deliberately tiny objects: an iterable of values plus a
membership test.  :class:`TupleDomain` represents all sequences over a base
domain up to a maximum length, which is how we bound the queue's internal
buffer.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence, Tuple

Value = object  # documentation alias: any hashable immutable value

_ALLOWED_SCALARS = (bool, int, str)


def is_value(obj: object) -> bool:
    """Return True iff *obj* belongs to the kernel's value model."""
    if isinstance(obj, _ALLOWED_SCALARS):
        return True
    if isinstance(obj, tuple):
        return all(is_value(elem) for elem in obj)
    if isinstance(obj, frozenset):
        return all(is_value(elem) for elem in obj)
    return False


def check_value(obj: object, context: str = "value") -> object:
    """Validate *obj* against the value model, returning it unchanged.

    Raises ``TypeError`` with a helpful message otherwise; used at the
    boundaries of the public API (state construction, constants).
    """
    if not is_value(obj):
        raise TypeError(
            f"{context} {obj!r} of type {type(obj).__name__} is not a TLA value "
            "(allowed: bool, int, str, tuple, frozenset thereof)"
        )
    return obj


def format_value(value: object) -> str:
    """Render a value in TLA-ish concrete syntax (tuples as << ... >>)."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, tuple):
        return "<<" + ", ".join(format_value(elem) for elem in value) + ">>"
    if isinstance(value, frozenset):
        return "{" + ", ".join(sorted(format_value(elem) for elem in value)) + "}"
    if isinstance(value, str):
        return f'"{value}"'
    return repr(value)


def domain_key(domain: "Domain") -> object:
    """A hashable structural key for a domain (used by expression keys).

    FiniteDomain keys by value set; composite domains key recursively;
    unknown Domain subclasses fall back to identity.
    """
    if isinstance(domain, FiniteDomain):
        return ("fd", tuple(domain.values()))
    if isinstance(domain, TupleDomain):
        return ("td", domain_key(domain.base), domain.max_len, domain.min_len)
    if isinstance(domain, ProductDomain):
        return ("pd", tuple(domain_key(c) for c in domain.components))
    return ("id", id(domain))


class Domain:
    """A finite set of values a variable may range over.

    Subclasses implement :meth:`values` (an iterator over all members) and
    :meth:`__contains__`.  Domains should be small; the model checker
    enumerates them when an action does not determine a primed variable.
    """

    def values(self) -> Iterator[object]:
        raise NotImplementedError

    def __contains__(self, value: object) -> bool:
        raise NotImplementedError

    def __iter__(self) -> Iterator[object]:
        return self.values()

    def size(self) -> int:
        """Number of values; subclasses may override with a closed form."""
        return sum(1 for _ in self.values())


class FiniteDomain(Domain):
    """An explicitly enumerated domain, e.g. ``FiniteDomain([0, 1])``."""

    __slots__ = ("_values", "_value_set")

    def __init__(self, values: Iterable[object]):
        ordered = []
        seen = set()
        for value in values:
            check_value(value, "domain element")
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        if not ordered:
            raise ValueError("a Domain must be nonempty")
        self._values: Tuple[object, ...] = tuple(ordered)
        self._value_set = frozenset(ordered)

    def values(self) -> Iterator[object]:
        return iter(self._values)

    def __contains__(self, value: object) -> bool:
        try:
            return value in self._value_set
        except TypeError:
            return False

    def size(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"FiniteDomain({list(self._values)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FiniteDomain) and self._value_set == other._value_set

    def __hash__(self) -> int:
        return hash(self._value_set)


def interval(low: int, high: int) -> FiniteDomain:
    """The integer interval ``low..high`` (inclusive), as in TLA's ``low..high``."""
    if high < low:
        raise ValueError(f"empty interval {low}..{high}")
    return FiniteDomain(range(low, high + 1))


BIT = FiniteDomain([0, 1])
BOOLEAN = FiniteDomain([False, True])


class TupleDomain(Domain):
    """All sequences over *base* with length in ``0..max_len``.

    Used for the queue's buffer variable ``q``: values from the message
    domain, at most ``N`` of them.  ``min_len`` supports fixed-length tuple
    variables (e.g. a channel triple) when needed.
    """

    __slots__ = ("base", "max_len", "min_len")

    def __init__(self, base: Domain, max_len: int, min_len: int = 0):
        if max_len < min_len or min_len < 0:
            raise ValueError(f"bad TupleDomain bounds min={min_len} max={max_len}")
        self.base = base
        self.max_len = max_len
        self.min_len = min_len

    def values(self) -> Iterator[object]:
        for length in range(self.min_len, self.max_len + 1):
            for combo in itertools.product(*([list(self.base.values())] * length)):
                yield tuple(combo)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, tuple):
            return False
        if not (self.min_len <= len(value) <= self.max_len):
            return False
        return all(elem in self.base for elem in value)

    def size(self) -> int:
        base_size = self.base.size()
        return sum(base_size ** length for length in range(self.min_len, self.max_len + 1))

    def __repr__(self) -> str:
        return f"TupleDomain({self.base!r}, max_len={self.max_len}, min_len={self.min_len})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TupleDomain)
                and domain_key(self) == domain_key(other))

    def __hash__(self) -> int:
        return hash(domain_key(self))


class ProductDomain(Domain):
    """Cartesian product of component domains, yielding tuples."""

    __slots__ = ("components",)

    def __init__(self, components: Sequence[Domain]):
        if not components:
            raise ValueError("ProductDomain needs at least one component")
        self.components = tuple(components)

    def values(self) -> Iterator[object]:
        pools = [list(comp.values()) for comp in self.components]
        for combo in itertools.product(*pools):
            yield tuple(combo)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, tuple) or len(value) != len(self.components):
            return False
        return all(elem in comp for elem, comp in zip(value, self.components))

    def size(self) -> int:
        result = 1
        for comp in self.components:
            result *= comp.size()
        return result

    def __repr__(self) -> str:
        return f"ProductDomain({list(self.components)!r})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ProductDomain)
                and domain_key(self) == domain_key(other))

    def __hash__(self) -> int:
        return hash(domain_key(self))
