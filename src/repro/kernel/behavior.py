"""Behaviors: finite prefixes and lasso-shaped infinite behaviors.

The paper's semantics is over *infinite* sequences of states (behaviors);
its safety machinery (closure ``C``, the operators ``⊳``, ``+v``, ``⊥``)
additionally quantifies over *finite* behaviors -- prefixes.

For mechanical checking we represent infinite behaviors as **lassos**:
ultimately periodic sequences ``s_0 .. s_{k-1} (s_k .. s_{n-1})^ω``.  Lassos
are exactly the behaviors an explicit-state model checker can exhibit as
counterexamples, and every satisfiable formula in our fragment has a lasso
model, so evaluating formulas on lassos loses nothing for our purposes.

A lasso with a single self-looping final state represents a behavior that
eventually *stutters forever* -- the extension used when converting a finite
behavior to an infinite one.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from .state import State


class FiniteBehavior:
    """A nonempty finite sequence of states (the paper's "finite behavior")."""

    __slots__ = ("states",)

    def __init__(self, states: Sequence[State]):
        if not states:
            raise ValueError("a FiniteBehavior must contain at least one state")
        if not all(isinstance(s, State) for s in states):
            raise TypeError("FiniteBehavior elements must be State instances")
        self.states: Tuple[State, ...] = tuple(states)

    def __len__(self) -> int:
        return len(self.states)

    def __getitem__(self, index: int) -> State:
        return self.states[index]

    def __iter__(self) -> Iterator[State]:
        return iter(self.states)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FiniteBehavior):
            return self.states == other.states
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.states)

    def prefix(self, length: int) -> "FiniteBehavior":
        if not (1 <= length <= len(self.states)):
            raise ValueError(f"prefix length {length} out of range 1..{len(self.states)}")
        return FiniteBehavior(self.states[:length])

    def extend(self, state: State) -> "FiniteBehavior":
        return FiniteBehavior(self.states + (state,))

    def steps(self) -> Iterator[Tuple[State, State]]:
        for i in range(len(self.states) - 1):
            yield self.states[i], self.states[i + 1]

    def stutter_forever(self) -> "Lasso":
        """The infinite behavior that follows this prefix and then stutters."""
        return Lasso(self.states, loop_start=len(self.states) - 1)

    def __repr__(self) -> str:
        return f"FiniteBehavior(len={len(self.states)})"


class Lasso:
    """An ultimately periodic infinite behavior.

    ``Lasso(states, loop_start=k)`` denotes the infinite behavior

        ``states[0] .. states[k-1] (states[k] .. states[-1])^ω``

    The loop is nonempty (``loop_start < len(states)``).  Position arithmetic
    (:meth:`position`, :meth:`successor_position`) folds arbitrary indices of
    the infinite behavior back into the finite representation; temporal
    formula evaluation only ever touches the ``len(states)`` canonical
    positions.
    """

    __slots__ = ("states", "loop_start")

    def __init__(self, states: Sequence[State], loop_start: int):
        if not states:
            raise ValueError("a Lasso must contain at least one state")
        if not (0 <= loop_start < len(states)):
            raise ValueError(
                f"loop_start {loop_start} out of range 0..{len(states) - 1}"
            )
        if not all(isinstance(s, State) for s in states):
            raise TypeError("Lasso elements must be State instances")
        self.states: Tuple[State, ...] = tuple(states)
        self.loop_start = loop_start

    # -- basic geometry -------------------------------------------------

    @property
    def length(self) -> int:
        """Number of canonical positions (stem + one copy of the loop)."""
        return len(self.states)

    @property
    def loop_length(self) -> int:
        return len(self.states) - self.loop_start

    def position(self, index: int) -> int:
        """Fold an index of the infinite behavior to a canonical position."""
        if index < len(self.states):
            return index
        return self.loop_start + (index - self.loop_start) % self.loop_length

    def state(self, index: int) -> State:
        return self.states[self.position(index)]

    def successor_position(self, pos: int) -> int:
        """The canonical position following canonical position *pos*."""
        if pos + 1 < len(self.states):
            return pos + 1
        return self.loop_start

    def positions(self) -> range:
        return range(len(self.states))

    def loop_positions(self) -> range:
        return range(self.loop_start, len(self.states))

    def reachable_positions(self, start: int) -> range:
        """Canonical positions occurring at or after canonical position *start*.

        Every position >= start occurs in the suffix; additionally the whole
        loop occurs, so the answer is ``min(start, loop_start) .. end``
        intersected with positions >= start union the loop.  Since the stem
        positions before *start* never recur, the result is
        ``start..n-1`` together with ``loop_start..n-1``.
        """
        return range(min(start, self.loop_start) if start >= self.loop_start else start,
                     len(self.states))

    def suffix_positions(self, start: int) -> Iterator[int]:
        """Canonical positions of states occurring at index >= start."""
        for pos in range(start, len(self.states)):
            yield pos
        # states of the loop situated before `start` still occur later
        for pos in range(self.loop_start, min(start, len(self.states))):
            yield pos

    def steps_from(self, start: int) -> Iterator[Tuple[int, int]]:
        """All (pos, succ) step pairs occurring at or after position *start*.

        Each canonical step is yielded once.
        """
        seen = set()
        for pos in self.suffix_positions(start):
            succ = self.successor_position(pos)
            if (pos, succ) not in seen:
                seen.add((pos, succ))
                yield pos, succ

    def loop_steps(self) -> Iterator[Tuple[int, int]]:
        """The step pairs of the loop (those that occur infinitely often)."""
        for pos in self.loop_positions():
            yield pos, self.successor_position(pos)

    # -- derived behaviors ----------------------------------------------

    def prefix(self, length: int) -> FiniteBehavior:
        """The first *length* states of the infinite behavior."""
        if length < 1:
            raise ValueError("prefix length must be >= 1")
        return FiniteBehavior([self.state(i) for i in range(length)])

    def unroll(self, copies: int) -> "Lasso":
        """An equivalent lasso with the loop repeated *copies* times.

        Useful when searching for hidden-variable witnesses whose period is
        a multiple of the visible loop's period.
        """
        if copies < 1:
            raise ValueError("copies must be >= 1")
        loop = self.states[self.loop_start:]
        return Lasso(self.states + loop * (copies - 1), self.loop_start)

    def rotate_loop_to(self, pos: int) -> "Lasso":
        """An equivalent lasso whose stem extends to canonical position *pos*.

        Requires ``pos >= loop_start``.  The stem is lengthened by walking
        around the loop, which does not change the denoted behavior.
        """
        if pos < self.loop_start:
            raise ValueError("can only rotate the loop entry forward")
        if pos == self.loop_start:
            return self
        loop = self.states[self.loop_start:]
        offset = pos - self.loop_start
        new_states = self.states[: self.loop_start] + loop[:offset] + loop[offset:] + loop[:offset]
        return Lasso(new_states[: self.loop_start + offset + len(loop)],
                     loop_start=self.loop_start + offset)

    def map_states(self, fn) -> "Lasso":
        """A lasso whose states are ``fn(state)`` -- e.g. a refinement mapping."""
        return Lasso([fn(s) for s in self.states], self.loop_start)

    def project(self, names: Iterable[str]) -> "Lasso":
        wanted = tuple(names)
        return self.map_states(lambda s: s.restrict(wanted))

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Lasso):
            return self.states == other.states and self.loop_start == other.loop_start
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.states, self.loop_start))

    def __repr__(self) -> str:
        return f"Lasso(stem={self.loop_start}, loop={self.loop_length})"


def lasso_from_stem_and_loop(stem: Sequence[State], loop: Sequence[State]) -> Lasso:
    """Build a lasso from an explicit stem and nonempty loop."""
    if not loop:
        raise ValueError("loop must be nonempty")
    return Lasso(list(stem) + list(loop), loop_start=len(stem))


def all_lassos(states: Sequence[State], max_stem: int, max_loop: int) -> Iterator[Lasso]:
    """Enumerate lassos over the given state set, up to the given bounds.

    Exhaustive and exponential: used by the brute-force semantic checker
    (DESIGN.md, ABL-DIRECT) on tiny universes only.
    """
    pool: List[State] = list(states)

    def sequences(length: int) -> Iterator[Tuple[State, ...]]:
        if length == 0:
            yield ()
            return
        for prefix in sequences(length - 1):
            for state in pool:
                yield prefix + (state,)

    for stem_len in range(0, max_stem + 1):
        for loop_len in range(1, max_loop + 1):
            for stem in sequences(stem_len):
                for loop in sequences(loop_len):
                    yield lasso_from_stem_and_loop(stem, loop)
