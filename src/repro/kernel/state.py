"""States and variable universes.

A *state* is an assignment of values to variables (paper, section 2.1).
Variable names are plain strings; dotted names such as ``"i.sig"`` are used
for the channel fields of the queue example, exactly following the paper's
notation.  States are immutable and hashable so they can serve as graph
nodes in the explicit-state model checker.

A :class:`Universe` declares *which* variables exist and the finite
:class:`~repro.kernel.values.Domain` each ranges over.  Semantically a TLA
state assigns a value to every variable of an infinite universe; for model
checking we fix the finite footprint relevant to the specification at hand.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .values import Domain, check_value, format_value

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _stable_hash(value: object, h: int = _FNV_OFFSET) -> int:
    """A process-stable 64-bit FNV-1a hash of a TLA value.

    Unlike the built-in ``hash``, this does not depend on
    ``PYTHONHASHSEED``, so fingerprints computed in different interpreter
    processes (coordinator vs workers, or across runs) agree.  Each value
    kind is tagged so e.g. ``0``/``False``/``""`` hash apart.
    """
    if isinstance(value, bool):
        h = ((h ^ (0xB1 + value)) * _FNV_PRIME) & _MASK64
    elif isinstance(value, int):
        h = ((h ^ 0x1E) * _FNV_PRIME) & _MASK64
        h = ((h ^ (value & _MASK64)) * _FNV_PRIME) & _MASK64
    elif isinstance(value, str):
        h = ((h ^ 0x5E) * _FNV_PRIME) & _MASK64
        for byte in value.encode("utf-8"):
            h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    elif isinstance(value, tuple):
        h = ((h ^ 0x7C) * _FNV_PRIME) & _MASK64
        h = ((h ^ len(value)) * _FNV_PRIME) & _MASK64
        for elem in value:
            h = _stable_hash(elem, h)
    elif isinstance(value, frozenset):
        # order-independent: combine element hashes commutatively
        acc = 0
        for elem in value:
            acc = (acc + _stable_hash(elem)) & _MASK64
        h = ((h ^ 0xF5) * _FNV_PRIME) & _MASK64
        h = ((h ^ len(value)) * _FNV_PRIME) & _MASK64
        h = ((h ^ acc) * _FNV_PRIME) & _MASK64
    else:  # pragma: no cover - the value model admits nothing else
        raise TypeError(f"cannot fingerprint {value!r}")
    return h


def value_to_portable(value: object) -> object:
    """Encode a TLA value as a JSON-serializable object, stably.

    Scalars (``bool``/``int``/``str``) pass through; composites become
    tagged lists -- ``("T", elems...)`` for tuples, ``("S", elems...)``
    for frozensets -- which is unambiguous because a bare JSON array is
    never itself a TLA value.  Frozenset elements are emitted in a
    canonical order (sorted by their own encoding), so equal values
    always produce byte-identical JSON: the checkpoint layer relies on
    this for stable, portable on-disk state serialization.
    """
    if isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, tuple):
        return ["T"] + [value_to_portable(elem) for elem in value]
    if isinstance(value, frozenset):
        encoded = [value_to_portable(elem) for elem in value]
        encoded.sort(key=lambda obj: json.dumps(obj, sort_keys=True))
        return ["S"] + encoded
    raise TypeError(f"cannot portably encode {value!r}")


def value_from_portable(obj: object) -> object:
    """Decode :func:`value_to_portable` output back into a TLA value."""
    if isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, list) and obj and obj[0] in ("T", "S"):
        elems = (value_from_portable(elem) for elem in obj[1:])
        return tuple(elems) if obj[0] == "T" else frozenset(elems)
    raise ValueError(f"not a portable TLA value encoding: {obj!r}")


def _unpickle_state(mapping: Dict[str, object]) -> "State":
    """Pickle helper: rebuild a state without re-validating its values
    (they were validated when the pickled state was first constructed)."""
    return State._trusted(mapping)


class State(Mapping[str, object]):
    """An immutable assignment of values to variable names.

    ``State({"x": 0, "y": (1, 2)})`` -- behaves as a read-only mapping.
    Equality and hashing are structural, so states are usable as dict keys
    and set members (graph nodes).
    """

    __slots__ = ("_map", "_items", "_hash", "_fp")

    def __init__(self, assignment: Mapping[str, object]):
        for name, value in assignment.items():
            if not isinstance(name, str):
                raise TypeError(f"variable name must be str, got {name!r}")
            check_value(value, f"value of variable {name!r}")
        self._map: Dict[str, object] = dict(assignment)
        self._items: Optional[Tuple[Tuple[str, object], ...]] = None
        self._hash: Optional[int] = None
        self._fp: Optional[int] = None

    @classmethod
    def _trusted(cls, mapping: Dict[str, object]) -> "State":
        """Internal fast path: build from values already known to be valid
        (domain members, values copied from existing states)."""
        state = cls.__new__(cls)
        state._map = mapping
        state._items = None
        state._hash = None
        state._fp = None
        return state

    def _item_tuple(self) -> Tuple[Tuple[str, object], ...]:
        if self._items is None:
            self._items = tuple(sorted(self._map.items()))
        return self._items

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> object:
        return self._map[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, name: object) -> bool:
        return name in self._map

    # -- identity -----------------------------------------------------------

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._item_tuple())
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, State):
            return self._map == other._map
        return NotImplemented

    def fingerprint(self) -> int:
        """A compact, process-stable 64-bit fingerprint of this state.

        Folds the ``(name, value)`` items in sorted variable order -- which
        is exactly a :class:`Universe`'s variable order, since
        ``Universe.variables`` is sorted.  Equal states have equal
        fingerprints in *every* process regardless of ``PYTHONHASHSEED``
        (the built-in ``hash`` does not guarantee this for strings), which
        is what lets the parallel explorer key successor batches by source
        fingerprint.  Cached after the first call.
        """
        if self._fp is None:
            self._fp = _stable_hash(self._item_tuple())
        return self._fp

    # -- pickling / portable serialization -----------------------------------

    def __reduce__(self):
        """Cheap pickling for worker hand-off: ship only the raw mapping and
        rebuild through the trusted constructor (no re-validation)."""
        return _unpickle_state, (self._map,)

    def to_portable(self) -> Dict[str, object]:
        """A JSON-serializable ``{name: encoded value}`` snapshot of this
        state (see :func:`value_to_portable`), in sorted variable order."""
        return {name: value_to_portable(value)
                for name, value in self._item_tuple()}

    @classmethod
    def from_portable(cls, mapping: Mapping[str, object]) -> "State":
        """Rebuild a state from :meth:`to_portable` output.

        Decoded values are structurally valid by construction (the
        decoder only produces value-model members), so this takes the
        trusted fast path; integrity beyond that is the checkpoint
        layer's job (it cross-checks state fingerprints).
        """
        return cls._trusted({name: value_from_portable(obj)
                             for name, obj in mapping.items()})

    # -- functional update --------------------------------------------------

    def assign(self, **updates: object) -> "State":
        """A copy of this state with keyword-named variables rebound.

        Only usable for identifier-like variable names; use :meth:`update`
        for dotted names such as ``"i.sig"``.
        """
        return self.update(updates)

    def update(self, updates: Mapping[str, object]) -> "State":
        """A copy of this state with the given variables rebound."""
        merged: Dict[str, object] = dict(self._map)
        merged.update(updates)
        return State(merged)

    def restrict(self, names: Iterable[str]) -> "State":
        """The sub-state over the given variable names (projection)."""
        wanted = set(names)
        return State._trusted(
            {key: value for key, value in self._map.items() if key in wanted}
        )

    def values_of(self, names: Iterable[str]) -> Tuple[object, ...]:
        """The tuple of values of *names*, in the given order.

        This is the semantic value of a variable tuple such as the paper's
        ``v = <m, x>``.
        """
        return tuple(self[name] for name in names)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{key}={format_value(value)}" for key, value in self._item_tuple()
        )
        return f"State({inner})"


class Universe:
    """Declaration of the variables in play and their finite domains.

    The model checker consults the universe when it must *enumerate*:
    initial states, undetermined primed variables, and witnesses for hidden
    variables.  Universes compose with :meth:`merge`, which is how the
    Composition Theorem engine builds the universe of a product system.
    """

    __slots__ = ("_domains", "_variables")

    def __init__(self, domains: Mapping[str, Domain]):
        for name, domain in domains.items():
            if not isinstance(name, str):
                raise TypeError(f"variable name must be str, got {name!r}")
            if not isinstance(domain, Domain):
                raise TypeError(f"domain of {name!r} must be a Domain, got {domain!r}")
        self._domains: Dict[str, Domain] = dict(domains)
        self._variables: Tuple[str, ...] = tuple(sorted(self._domains))

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._variables

    def domain(self, name: str) -> Domain:
        try:
            return self._domains[name]
        except KeyError:
            raise KeyError(
                f"variable {name!r} is not declared in this universe "
                f"(declared: {', '.join(self.variables) or 'none'})"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._domains

    def declares(self, names: Iterable[str]) -> bool:
        return all(name in self._domains for name in names)

    def merge(self, other: "Universe") -> "Universe":
        """The union of two universes.

        A variable declared in both must have equal domains in both --
        composing components that disagree about a shared interface
        variable's domain is almost certainly a modelling bug, so we fail
        loudly.
        """
        merged: Dict[str, Domain] = dict(self._domains)
        for name, domain in other._domains.items():
            if name in merged and merged[name] != domain:
                # the shipped Domain kinds compare structurally; unknown
                # subclasses fall back to identity, the conservative choice
                if merged[name] is not domain:
                    raise ValueError(
                        f"universe merge conflict for variable {name!r}: "
                        f"{merged[name]!r} vs {domain!r}"
                    )
            merged[name] = domain
        return Universe(merged)

    def restrict(self, names: Iterable[str]) -> "Universe":
        wanted = set(names)
        return Universe({n: d for n, d in self._domains.items() if n in wanted})

    def states(self) -> Iterator[State]:
        """Enumerate *all* states of the universe (the full product).

        Exponential; used only by the brute-force semantic checker on tiny
        instances (DESIGN.md, ABL-DIRECT) and in tests.
        """
        names = self.variables
        if not names:
            yield State({})
            return

        def rec(index: int, acc: Dict[str, object]) -> Iterator[State]:
            if index == len(names):
                yield State(acc)
                return
            name = names[index]
            for value in self._domains[name].values():
                acc[name] = value
                yield from rec(index + 1, acc)
            acc.pop(name, None)

        yield from rec(0, {})

    def state_count(self) -> int:
        result = 1
        for domain in self._domains.values():
            result *= domain.size()
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {domain!r}" for name, domain in sorted(self._domains.items()))
        return f"Universe({{{inner}}})"
