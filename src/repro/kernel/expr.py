"""Expression AST: state functions, state predicates, and actions.

Following section 2.1 of the paper:

* a **state function** is an expression over (unprimed) variables; it
  assigns a value to each state;
* a **state predicate** is a Boolean-valued state function;
* an **action** is a Boolean-valued expression over primed and unprimed
  variables; it is true or false of a *pair* of states, the primed
  variables referring to the second state.

All three are uniformly represented by :class:`Expr` trees.  An expression
containing no primed variables is a state function.  Expressions support:

* evaluation against an :class:`Env` (a state, or a pair of states),
* free/primed variable analysis,
* capture-avoiding substitution of expressions for variables -- the
  paper's ``F[e_1/v_1, ..., e_n/v_n]``, used to build the double-queue
  specifications ``F[1]``, ``F[2]``, ``F[dbl]``,
* priming (the paper's ``f'``: priming all variables of ``f``),
* a structural :meth:`Expr.key` for hashing/equality in caches and tests.

Python operator overloading provides a light DSL::

    x, y = Var("x"), Var("y")
    action = (x.prime() == x + 1) & (y.prime() == y)

Note that ``==`` on expressions builds an :class:`Eq` node; identity-based
hashing keeps expressions usable in sets.  Use :func:`structurally_equal`
to compare expression trees.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .state import State
from .values import Domain, check_value, domain_key, format_value, is_value


class EvalError(Exception):
    """Raised when an expression cannot be evaluated (type error, wrong arity,
    primed variable outside an action context, unbound variable, ...)."""


class Env:
    """Evaluation environment: a state pair plus rigid local bindings.

    For state functions ``next_state`` is ``None``; evaluating a primed
    variable then raises :class:`EvalError`.  ``rigid`` holds values of
    bound (quantifier) variables, which denote the *same* value in both
    states of a step.
    """

    __slots__ = ("current", "next_state", "rigid")

    def __init__(self, current: State, next_state: Optional[State] = None,
                 rigid: Optional[Mapping[str, object]] = None):
        self.current = current
        self.next_state = next_state
        self.rigid: Dict[str, object] = dict(rigid) if rigid else {}

    def bind(self, name: str, value: object) -> "Env":
        child = Env(self.current, self.next_state, self.rigid)
        child.rigid[name] = value
        return child

    def lookup(self, name: str, primed: bool) -> object:
        if not primed and name in self.rigid:
            return self.rigid[name]
        if primed and name in self.rigid:
            # rigid variables are constant across the step
            return self.rigid[name]
        target = self.next_state if primed else self.current
        if target is None:
            raise EvalError(
                f"primed variable {name}' evaluated outside an action context"
            )
        try:
            return target[name]
        except KeyError:
            raise EvalError(
                f"variable {name}{'′' if primed else ''} is unbound in state {target!r}"
            ) from None


def to_expr(value: object) -> "Expr":
    """Coerce a Python value or Expr to an Expr."""
    if isinstance(value, Expr):
        return value
    if is_value(value):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to an expression")


class Expr:
    """Base class for expression nodes.  Immutable."""

    __slots__ = ("_free", "_primed")

    def __init__(self) -> None:
        self._free: Optional[FrozenSet[str]] = None
        self._primed: Optional[FrozenSet[str]] = None

    # -- evaluation -------------------------------------------------------

    def eval(self, env: Env) -> object:
        raise NotImplementedError

    def eval_state(self, state: State) -> object:
        """Evaluate as a state function over a single state."""
        return self.eval(Env(state))

    def eval_pair(self, current: State, next_state: State) -> object:
        """Evaluate as an action over a step."""
        return self.eval(Env(current, next_state))

    def holds(self, env: Env) -> bool:
        value = self.eval(env)
        if not isinstance(value, bool):
            raise EvalError(f"expected a Boolean, got {format_value(value)} from {self}")
        return value

    # -- analysis ----------------------------------------------------------

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def bound_names(self) -> FrozenSet[str]:
        """Names bound *at this node* (nonempty only for quantifiers)."""
        return frozenset()

    def free_vars(self) -> FrozenSet[str]:
        """Names of state variables occurring unprimed (free)."""
        if self._free is None:
            acc = frozenset()
            for child in self.children():
                acc |= child.free_vars()
            self._free = acc - self.bound_names()
        return self._free

    def primed_vars(self) -> FrozenSet[str]:
        """Names of state variables occurring primed."""
        if self._primed is None:
            acc = frozenset()
            for child in self.children():
                acc |= child.primed_vars()
            self._primed = acc - self.bound_names()
        return self._primed

    def all_vars(self) -> FrozenSet[str]:
        return self.free_vars() | self.primed_vars()

    def is_state_function(self) -> bool:
        return not self.primed_vars()

    # -- transformation ----------------------------------------------------

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Capture-avoiding substitution of expressions for state variables.

        Primed occurrences ``v'`` are replaced by the primed substituted
        expression (every variable of the replacement primed), matching the
        paper's convention that priming distributes over state functions.
        """
        mapping = {name: to_expr(expr) for name, expr in mapping.items()}
        return self._substitute(mapping)

    def _substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return self._rebuild([child._substitute(mapping) for child in self.children()])

    def prime(self) -> "Expr":
        """The paper's ``f'``: this expression with all variables primed."""
        return prime_expr(self)

    def _rebuild(self, children: Sequence["Expr"]) -> "Expr":
        raise NotImplementedError

    # -- structural identity -------------------------------------------------

    def key(self) -> Tuple:
        """A hashable structural key; equal keys iff structurally equal."""
        return (type(self).__name__,) + tuple(child.key() for child in self.children())

    # -- DSL sugar -----------------------------------------------------------

    def __and__(self, other: object) -> "Expr":
        return And(self, to_expr(other))

    def __rand__(self, other: object) -> "Expr":
        return And(to_expr(other), self)

    def __or__(self, other: object) -> "Expr":
        return Or(self, to_expr(other))

    def __ror__(self, other: object) -> "Expr":
        return Or(to_expr(other), self)

    def __invert__(self) -> "Expr":
        return Not(self)

    def implies(self, other: object) -> "Expr":
        return Implies(self, to_expr(other))

    def iff(self, other: object) -> "Expr":
        return Equiv(self, to_expr(other))

    def __eq__(self, other: object):  # type: ignore[override]
        return Eq(self, to_expr(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return Not(Eq(self, to_expr(other)))

    __hash__ = object.__hash__

    def __lt__(self, other: object) -> "Expr":
        return Cmp("<", self, to_expr(other))

    def __le__(self, other: object) -> "Expr":
        return Cmp("<=", self, to_expr(other))

    def __gt__(self, other: object) -> "Expr":
        return Cmp(">", self, to_expr(other))

    def __ge__(self, other: object) -> "Expr":
        return Cmp(">=", self, to_expr(other))

    def __add__(self, other: object) -> "Expr":
        return Arith("+", self, to_expr(other))

    def __radd__(self, other: object) -> "Expr":
        return Arith("+", to_expr(other), self)

    def __sub__(self, other: object) -> "Expr":
        return Arith("-", self, to_expr(other))

    def __rsub__(self, other: object) -> "Expr":
        return Arith("-", to_expr(other), self)

    def __mul__(self, other: object) -> "Expr":
        return Arith("*", self, to_expr(other))

    def __rmul__(self, other: object) -> "Expr":
        return Arith("*", to_expr(other), self)

    def __mod__(self, other: object) -> "Expr":
        return Arith("%", self, to_expr(other))


class Const(Expr):
    """A literal value."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        super().__init__()
        check_value(value, "constant")
        self.value = value

    def eval(self, env: Env) -> object:
        return self.value

    def _substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return self

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return self

    def key(self) -> Tuple:
        return ("Const", self.value)

    def __repr__(self) -> str:
        return f"Const({format_value(self.value)})"


TRUE = Const(True)
FALSE = Const(False)


class Var(Expr):
    """A state variable occurrence, possibly primed.

    ``Var("x")`` is the value of ``x`` in the current state;
    ``Var("x", primed=True)`` (or ``Var("x").prime()``) in the next state.
    Dotted names such as ``"i.sig"`` are ordinary variable names.
    """

    __slots__ = ("name", "primed")

    def __init__(self, name: str, primed: bool = False):
        super().__init__()
        if not isinstance(name, str) or not name:
            raise TypeError(f"variable name must be a nonempty str, got {name!r}")
        self.name = name
        self.primed = primed

    def eval(self, env: Env) -> object:
        return env.lookup(self.name, self.primed)

    def free_vars(self) -> FrozenSet[str]:
        return frozenset() if self.primed else frozenset({self.name})

    def primed_vars(self) -> FrozenSet[str]:
        return frozenset({self.name}) if self.primed else frozenset()

    def _substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        if self.name not in mapping:
            return self
        replacement = mapping[self.name]
        return prime_expr(replacement) if self.primed else replacement

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return self

    def prime(self) -> Expr:
        if self.primed:
            raise ValueError(f"variable {self.name} is already primed")
        return Var(self.name, primed=True)

    def key(self) -> Tuple:
        return ("Var", self.name, self.primed)

    def __repr__(self) -> str:
        return f"Var({self.name}{'′' if self.primed else ''})"


def prime_expr(expr: Expr) -> Expr:
    """Prime all (free) state-variable occurrences of *expr*.

    Rigid bound variables are untouched: they denote the same value in both
    states.  Priming an expression that already contains primed variables is
    an error (TLA has no double priming).
    """
    expr = to_expr(expr)

    def walk(node: Expr, bound: FrozenSet[str]) -> Expr:
        if isinstance(node, Var):
            if node.name in bound:
                return node
            if node.primed:
                raise ValueError(f"cannot prime {node.name}': double priming")
            return Var(node.name, primed=True)
        new_bound = bound | node.bound_names()
        return node._rebuild([walk(child, new_bound) for child in node.children()])

    return walk(expr, frozenset())


class _Nary(Expr):
    """Shared machinery for nodes with a fixed tuple of child expressions."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]):
        super().__init__()
        self.args: Tuple[Expr, ...] = tuple(to_expr(arg) for arg in args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args


class And(_Nary):
    """Conjunction; flattens nested conjunctions for readability."""

    __slots__ = ()

    def __init__(self, *args: object):
        flat: List[Expr] = []
        for arg in args:
            expr = to_expr(arg)
            if isinstance(expr, And):
                flat.extend(expr.args)
            else:
                flat.append(expr)
        super().__init__(flat)

    def eval(self, env: Env) -> object:
        return all(arg.holds(env) for arg in self.args)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return And(*children)

    def __repr__(self) -> str:
        return "And(" + ", ".join(map(repr, self.args)) + ")"


class Or(_Nary):
    """Disjunction; flattens nested disjunctions."""

    __slots__ = ()

    def __init__(self, *args: object):
        flat: List[Expr] = []
        for arg in args:
            expr = to_expr(arg)
            if isinstance(expr, Or):
                flat.extend(expr.args)
            else:
                flat.append(expr)
        super().__init__(flat)

    def eval(self, env: Env) -> object:
        return any(arg.holds(env) for arg in self.args)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Or(*children)

    def __repr__(self) -> str:
        return "Or(" + ", ".join(map(repr, self.args)) + ")"


class Not(_Nary):
    __slots__ = ()

    def __init__(self, arg: object):
        super().__init__([to_expr(arg)])

    @property
    def arg(self) -> Expr:
        return self.args[0]

    def eval(self, env: Env) -> object:
        return not self.arg.holds(env)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Not(children[0])

    def __repr__(self) -> str:
        return f"Not({self.arg!r})"


class Implies(_Nary):
    __slots__ = ()

    def __init__(self, lhs: object, rhs: object):
        super().__init__([to_expr(lhs), to_expr(rhs)])

    def eval(self, env: Env) -> object:
        return (not self.args[0].holds(env)) or self.args[1].holds(env)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Implies(children[0], children[1])

    def __repr__(self) -> str:
        return f"Implies({self.args[0]!r}, {self.args[1]!r})"


class Equiv(_Nary):
    __slots__ = ()

    def __init__(self, lhs: object, rhs: object):
        super().__init__([to_expr(lhs), to_expr(rhs)])

    def eval(self, env: Env) -> object:
        return self.args[0].holds(env) == self.args[1].holds(env)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Equiv(children[0], children[1])

    def __repr__(self) -> str:
        return f"Equiv({self.args[0]!r}, {self.args[1]!r})"


class Eq(_Nary):
    """Value equality (works on any values, like TLA's ``=``)."""

    __slots__ = ()

    def __init__(self, lhs: object, rhs: object):
        super().__init__([to_expr(lhs), to_expr(rhs)])

    def eval(self, env: Env) -> object:
        return self.args[0].eval(env) == self.args[1].eval(env)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Eq(children[0], children[1])

    def __repr__(self) -> str:
        return f"Eq({self.args[0]!r}, {self.args[1]!r})"


_CMP_OPS: Dict[str, Callable[[int, int], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Cmp(_Nary):
    """Integer comparison."""

    __slots__ = ("op",)

    def __init__(self, op: str, lhs: object, rhs: object):
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        super().__init__([to_expr(lhs), to_expr(rhs)])
        self.op = op

    def eval(self, env: Env) -> object:
        lhs = self.args[0].eval(env)
        rhs = self.args[1].eval(env)
        if not isinstance(lhs, int) or not isinstance(rhs, int):
            raise EvalError(
                f"comparison {self.op} needs integers, got "
                f"{format_value(lhs)} and {format_value(rhs)}"
            )
        return _CMP_OPS[self.op](lhs, rhs)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Cmp(self.op, children[0], children[1])

    def key(self) -> Tuple:
        return ("Cmp", self.op, self.args[0].key(), self.args[1].key())

    def __repr__(self) -> str:
        return f"Cmp({self.op!r}, {self.args[0]!r}, {self.args[1]!r})"


_ARITH_OPS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
    "div": lambda a, b: a // b,
}


class Arith(_Nary):
    """Integer arithmetic."""

    __slots__ = ("op",)

    def __init__(self, op: str, lhs: object, rhs: object):
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        super().__init__([to_expr(lhs), to_expr(rhs)])
        self.op = op

    def eval(self, env: Env) -> object:
        lhs = self.args[0].eval(env)
        rhs = self.args[1].eval(env)
        if not isinstance(lhs, int) or not isinstance(rhs, int):
            raise EvalError(
                f"arithmetic {self.op} needs integers, got "
                f"{format_value(lhs)} and {format_value(rhs)}"
            )
        if self.op in ("%", "div") and rhs == 0:
            raise EvalError(f"division by zero in {self!r}")
        return _ARITH_OPS[self.op](lhs, rhs)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Arith(self.op, children[0], children[1])

    def key(self) -> Tuple:
        return ("Arith", self.op, self.args[0].key(), self.args[1].key())

    def __repr__(self) -> str:
        return f"Arith({self.op!r}, {self.args[0]!r}, {self.args[1]!r})"


class IfThenElse(_Nary):
    __slots__ = ()

    def __init__(self, cond: object, then: object, orelse: object):
        super().__init__([to_expr(cond), to_expr(then), to_expr(orelse)])

    def eval(self, env: Env) -> object:
        if self.args[0].holds(env):
            return self.args[1].eval(env)
        return self.args[2].eval(env)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return IfThenElse(children[0], children[1], children[2])

    def __repr__(self) -> str:
        return f"IfThenElse({self.args[0]!r}, {self.args[1]!r}, {self.args[2]!r})"


class TupleExpr(_Nary):
    """Sequence/tuple construction: the paper's angle brackets ``<<...>>``."""

    __slots__ = ()

    def __init__(self, *args: object):
        super().__init__([to_expr(arg) for arg in args])

    def eval(self, env: Env) -> object:
        return tuple(arg.eval(env) for arg in self.args)

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return TupleExpr(*children)

    def __repr__(self) -> str:
        return "TupleExpr(" + ", ".join(map(repr, self.args)) + ")"


class InSet(_Nary):
    """Membership of a value in a finite :class:`Domain` (``e \\in D``)."""

    __slots__ = ("domain",)

    def __init__(self, elem: object, domain: Domain):
        super().__init__([to_expr(elem)])
        if not isinstance(domain, Domain):
            raise TypeError(f"InSet needs a Domain, got {domain!r}")
        self.domain = domain

    def eval(self, env: Env) -> object:
        return self.args[0].eval(env) in self.domain

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return InSet(children[0], self.domain)

    def key(self) -> Tuple:
        return ("InSet", self.args[0].key(), domain_key(self.domain))

    def __repr__(self) -> str:
        return f"InSet({self.args[0]!r}, {self.domain!r})"


# -- builtin sequence/integer functions --------------------------------------

def _fn_len(args: Sequence[object]) -> object:
    (seq,) = args
    if not isinstance(seq, tuple):
        raise EvalError(f"Len expects a sequence, got {format_value(seq)}")
    return len(seq)


def _fn_head(args: Sequence[object]) -> object:
    (seq,) = args
    if not isinstance(seq, tuple) or not seq:
        raise EvalError(f"Head expects a nonempty sequence, got {format_value(seq)}")
    return seq[0]


def _fn_tail(args: Sequence[object]) -> object:
    (seq,) = args
    if not isinstance(seq, tuple) or not seq:
        raise EvalError(f"Tail expects a nonempty sequence, got {format_value(seq)}")
    return seq[1:]


def _fn_append(args: Sequence[object]) -> object:
    seq, elem = args
    if not isinstance(seq, tuple):
        raise EvalError(f"Append expects a sequence, got {format_value(seq)}")
    return seq + (elem,)


def _fn_cat(args: Sequence[object]) -> object:
    lhs, rhs = args
    if not isinstance(lhs, tuple) or not isinstance(rhs, tuple):
        raise EvalError(
            f"\\o expects sequences, got {format_value(lhs)} and {format_value(rhs)}"
        )
    return lhs + rhs


def _fn_nth(args: Sequence[object]) -> object:
    seq, index = args
    if not isinstance(seq, tuple) or not isinstance(index, int):
        raise EvalError(f"Nth expects (sequence, int), got {args!r}")
    if not (1 <= index <= len(seq)):
        raise EvalError(f"index {index} out of range for sequence of length {len(seq)}")
    return seq[index - 1]  # TLA sequences are 1-based


def _fn_min(args: Sequence[object]) -> object:
    a, b = args
    if not isinstance(a, int) or not isinstance(b, int):
        raise EvalError(f"Min expects integers, got {args!r}")
    return min(a, b)


def _fn_max(args: Sequence[object]) -> object:
    a, b = args
    if not isinstance(a, int) or not isinstance(b, int):
        raise EvalError(f"Max expects integers, got {args!r}")
    return max(a, b)


BUILTIN_FUNCTIONS: Dict[str, Tuple[int, Callable[[Sequence[object]], object]]] = {
    "Len": (1, _fn_len),
    "Head": (1, _fn_head),
    "Tail": (1, _fn_tail),
    "Append": (2, _fn_append),
    "Cat": (2, _fn_cat),
    "Nth": (2, _fn_nth),
    "Min": (2, _fn_min),
    "Max": (2, _fn_max),
}


class Fn(_Nary):
    """Application of a builtin function (``Len``, ``Head``, ``Tail``, ...)."""

    __slots__ = ("fname",)

    def __init__(self, fname: str, *args: object):
        if fname not in BUILTIN_FUNCTIONS:
            raise ValueError(
                f"unknown builtin function {fname!r} "
                f"(known: {', '.join(sorted(BUILTIN_FUNCTIONS))})"
            )
        arity, _ = BUILTIN_FUNCTIONS[fname]
        if len(args) != arity:
            raise ValueError(f"{fname} expects {arity} argument(s), got {len(args)}")
        super().__init__([to_expr(arg) for arg in args])
        self.fname = fname

    def eval(self, env: Env) -> object:
        _, impl = BUILTIN_FUNCTIONS[self.fname]
        return impl([arg.eval(env) for arg in self.args])

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return Fn(self.fname, *children)

    def key(self) -> Tuple:
        return ("Fn", self.fname) + tuple(arg.key() for arg in self.args)

    def __repr__(self) -> str:
        return f"Fn({self.fname!r}, " + ", ".join(map(repr, self.args)) + ")"


# Convenience constructors, so systems code reads like the paper.

def Len(seq: object) -> Expr:
    return Fn("Len", seq)


def Head(seq: object) -> Expr:
    return Fn("Head", seq)


def Tail(seq: object) -> Expr:
    return Fn("Tail", seq)


def Append(seq: object, elem: object) -> Expr:
    return Fn("Append", seq, elem)


def Cat(lhs: object, rhs: object) -> Expr:
    return Fn("Cat", lhs, rhs)


def Nth(seq: object, index: object) -> Expr:
    return Fn("Nth", seq, index)


_FRESH_COUNTER = itertools.count()


def _fresh_name(base: str, avoid: FrozenSet[str]) -> str:
    candidate = f"{base}#{next(_FRESH_COUNTER)}"
    while candidate in avoid:
        candidate = f"{base}#{next(_FRESH_COUNTER)}"
    return candidate


class _Quant(Expr):
    """Bounded rigid quantification over a finite domain.

    The bound variable is *rigid*: it denotes one value, identical in the
    current and next state of a step.  This is how the queue's environment
    sends "an arbitrary number": ``Exists("v", Msg, Send(v, i))``.
    """

    __slots__ = ("var", "domain", "body")

    def __init__(self, var: str, domain: Domain, body: object):
        super().__init__()
        if not isinstance(domain, Domain):
            raise TypeError(f"quantifier domain must be a Domain, got {domain!r}")
        self.var = var
        self.domain = domain
        self.body = to_expr(body)

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def bound_names(self) -> FrozenSet[str]:
        return frozenset({self.var})

    def _substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        # drop shadowed bindings; alpha-rename on capture
        mapping = {name: expr for name, expr in mapping.items() if name != self.var}
        if not mapping:
            return self
        captured = frozenset().union(
            *(expr.free_vars() | expr.primed_vars() for expr in mapping.values())
        )
        var, body = self.var, self.body
        if self.var in captured:
            fresh = _fresh_name(self.var, captured | body.all_vars())
            body = body._substitute({self.var: Var(fresh)})
            var = fresh
        return type(self)(var, self.domain, body._substitute(mapping))

    def _rebuild(self, children: Sequence[Expr]) -> Expr:
        return type(self)(self.var, self.domain, children[0])

    def key(self) -> Tuple:
        # alpha-insensitive keys would require de Bruijn indices; structural
        # keys with the bound name are sufficient for caching purposes.
        return (type(self).__name__, self.var, domain_key(self.domain),
                self.body.key())


class Exists(_Quant):
    __slots__ = ()

    def eval(self, env: Env) -> object:
        return any(
            self.body.holds(env.bind(self.var, value))
            for value in self.domain.values()
        )

    def __repr__(self) -> str:
        return f"Exists({self.var!r}, {self.domain!r}, {self.body!r})"


class Forall(_Quant):
    __slots__ = ()

    def eval(self, env: Env) -> object:
        return all(
            self.body.holds(env.bind(self.var, value))
            for value in self.domain.values()
        )

    def __repr__(self) -> str:
        return f"Forall({self.var!r}, {self.domain!r}, {self.body!r})"


def structurally_equal(lhs: Expr, rhs: Expr) -> bool:
    """Structural equality of expression trees (``==`` builds Eq nodes)."""
    return to_expr(lhs).key() == to_expr(rhs).key()


def rename_vars(expr: Expr, renaming: Mapping[str, str]) -> Expr:
    """Rename state variables; the common special case of substitution."""
    return expr.substitute({old: Var(new) for old, new in renaming.items()})
