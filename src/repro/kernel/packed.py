"""Packed state encoding and fingerprint-only successor plans.

The full explorer keeps one dict-backed :class:`~repro.kernel.state.State`
per visited state.  That is convenient -- every layer can evaluate
expressions against states directly -- but it caps exploration around
10^4-10^5 states: each state costs a dict, a tuple of items, and boxed
values.  TLC's classic answer (Yu, Manolios, Lamport, *Model Checking
TLA+ Specifications*) is to explore on fingerprints and regenerate
anything else on demand.

This module supplies the kernel half of that engine:

* :class:`PackedCodec` -- a bijection between the states of a finite
  :class:`~repro.kernel.state.Universe` and bit-packed Python ints.
  Each variable gets a fixed field of ``ceil(log2(|domain|))`` bits
  holding the index of its value in domain enumeration order.  A state
  is then *one int*: hashable, picklable, and orders of magnitude
  smaller than a ``State``.
* :class:`PackedPlan` -- a compiled successor relation over packed ints.
  It reuses the branch plans of :func:`~repro.kernel.action.compile_action`
  but memoizes every guard conjunct, binding, and check on the packed
  *footprint* it actually reads (``packed & mask``), so expression
  evaluation happens once per distinct footprint instead of once per
  state.  Guards are decomposed into a tree of And/Or/Not/Implies/Equiv
  nodes with memoized leaves; short-circuit order and ``EvalError``
  semantics mirror ``Expr.holds`` exactly, so the emitted successor sets
  are bit-for-bit those of :class:`~repro.kernel.action.SuccessorPlan`.

The codec also computes ``State.fingerprint()``-compatible fingerprints
directly from packed ints: the FNV-1a fold of a state is a fixed word
sequence per (variable, value), so the per-value word lists are
precomputed at codec build time and the hot path just folds ints.

Universes that cannot be packed (empty domains, non-enumerable or huge
domains) raise :class:`CompactUnsupported`; callers fall back to the
full engine.
"""

from __future__ import annotations

import itertools
import json
from hashlib import sha256
from typing import Dict, Iterable, List, Optional, Tuple

from .action import compile_action
from .expr import And, Env, Equiv, EvalError, Expr, Implies, Not, Or
from .state import (
    _FNV_OFFSET,
    _FNV_PRIME,
    _MASK64,
    State,
    Universe,
    _stable_hash,
    value_to_portable,
)

__all__ = ["CompactUnsupported", "PackedCodec", "PackedPlan",
           "support_problem", "supports"]

#: Refuse to enumerate domains larger than this when building a codec --
#: the code table would dwarf the states it is meant to compress.
MAX_DOMAIN_SIZE = 1 << 20

#: Three-valued guard result: 0 = False, 1 = True, ERR = EvalError.
_ERR = 2

#: Sentinel for a binding/check whose value falls outside the domain or
#: raises ``EvalError`` -- the branch dies for that footprint.
_DEAD = -1


class CompactUnsupported(Exception):
    """The universe or spec cannot be run on the compact engine."""


def _value_words(value: object) -> List[int]:
    """The FNV-1a word sequence ``_stable_hash`` folds for *value*.

    ``_stable_hash(value, h)`` folds a sequence of 64-bit words that
    depends only on *value*, never on the running hash ``h`` (the
    frozenset accumulator is built from fresh offsets, so it too is a
    constant of the value).  Precomputing the sequence lets the codec
    fingerprint packed states without materialising them.
    """
    if isinstance(value, bool):
        return [0xB1 + value]
    if isinstance(value, int):
        return [0x1E, value & _MASK64]
    if isinstance(value, str):
        return [0x5E] + list(value.encode("utf-8"))
    if isinstance(value, tuple):
        words = [0x7C, len(value)]
        for elem in value:
            words.extend(_value_words(elem))
        return words
    if isinstance(value, frozenset):
        acc = 0
        for elem in value:
            acc = (acc + _stable_hash(elem)) & _MASK64
        return [0xF5, len(value), acc]
    raise TypeError(f"cannot fingerprint {value!r}")


def _fold(h: int, words: Iterable[int]) -> int:
    for word in words:
        h = ((h ^ word) * _FNV_PRIME) & _MASK64
    return h


class PackedCodec:
    """Bit-packs the states of a finite universe into single ints.

    Variables occupy fixed, adjacent bit fields in sorted-name order
    (the same order ``Universe.variables`` exposes), each wide enough
    for an index into the domain's enumeration.  The packing is a
    bijection, so packed ints are exact state identities -- unlike
    64-bit fingerprints, interning on packed ints can never collide.
    """

    __slots__ = ("universe", "variables", "shift", "width", "codes",
                 "values", "bits", "_fp_prefix", "_fp_words", "_fp_seed",
                 "_fp_table")

    def __init__(self, universe: Universe, max_domain: int = MAX_DOMAIN_SIZE):
        self.universe = universe
        self.variables = universe.variables
        if not self.variables:
            raise CompactUnsupported(
                "compact engine needs at least one variable to pack")
        self.shift: Dict[str, int] = {}
        self.width: Dict[str, int] = {}
        self.codes: Dict[str, Dict[object, int]] = {}
        self.values: Dict[str, Tuple[object, ...]] = {}
        bit = 0
        for name in self.variables:
            vals = []
            for value in universe.domain(name).values():
                vals.append(value)
                if len(vals) > max_domain:
                    raise CompactUnsupported(
                        f"domain of {name!r} exceeds {max_domain} values; "
                        f"too large for the compact engine")
            if not vals:
                raise CompactUnsupported(
                    f"domain of {name!r} is empty; nothing to pack")
            self.values[name] = tuple(vals)
            self.codes[name] = {v: i for i, v in enumerate(vals)}
            w = max(1, (len(vals) - 1).bit_length())
            self.shift[name] = bit
            self.width[name] = w
            bit += w
        self.bits = bit
        # Fingerprint word tables: State.fingerprint() folds the sorted
        # item tuple, i.e. [0x7C, nvars] then per item [0x7C, 2] + the
        # name's words + the value's words.  Variables are already in
        # sorted order, so the per-(variable, code) sequences concatenate
        # in field order.
        self._fp_prefix = (0x7C, len(self.variables))
        self._fp_words: Dict[str, Tuple[Tuple[int, ...], ...]] = {}
        for name in self.variables:
            name_words = [0x7C, 2] + _value_words(name)
            try:
                per_code = tuple(
                    tuple(name_words + _value_words(value))
                    for value in self.values[name])
            except TypeError as exc:
                raise CompactUnsupported(str(exc)) from None
            self._fp_words[name] = per_code
        # flattened fingerprint plan: the prefix fold is constant, and
        # each variable contributes one (shift, mask, words-per-code) row
        self._fp_seed = _fold(_FNV_OFFSET, self._fp_prefix)
        self._fp_table = tuple(
            (self.shift[name], (1 << self.width[name]) - 1,
             self._fp_words[name])
            for name in self.variables)

    def mask_of(self, names: Iterable[str]) -> int:
        """The packed-int mask covering *names* (unknown names ignored)."""
        m = 0
        for name in names:
            if name in self.shift:
                m |= ((1 << self.width[name]) - 1) << self.shift[name]
        return m

    def encode(self, state: State) -> int:
        p = 0
        for name in self.variables:
            p |= self.codes[name][state[name]] << self.shift[name]
        return p

    def decode(self, packed: int) -> State:
        return State._trusted({
            name: self.values[name][(packed >> self.shift[name])
                                    & ((1 << self.width[name]) - 1)]
            for name in self.variables})

    def fingerprint(self, packed: int) -> int:
        """``State.fingerprint()`` of the decoded state, without decoding.

        Hot path of the compact and distributed engines (every routing
        and dedup decision starts here), so the per-variable fold is
        flattened into one loop over a precomputed ``(shift, mask,
        words-per-code)`` table instead of per-variable dict lookups and
        ``_fold`` calls.  The fold sequence -- and therefore every
        fingerprint, digest, and golden -- is unchanged."""
        h = self._fp_seed
        for shift, mask, per_code in self._fp_table:
            for word in per_code[(packed >> shift) & mask]:
                h = ((h ^ word) * _FNV_PRIME) & _MASK64
        return h

    def signature(self) -> str:
        """A stable hash of the packing layout.

        Two codecs with the same signature encode every state to the
        same packed int, so checkpoints can verify on resume that the
        spec (and hence the layout) has not drifted.
        """
        doc = {
            "variables": list(self.variables),
            "domains": {name: [value_to_portable(v)
                               for v in self.values[name]]
                        for name in self.variables},
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return sha256(blob.encode("utf-8")).hexdigest()


# -- supportability probe -----------------------------------------------------
#
# CompactUnsupported is raised only while building the codec, so whether a
# spec can be packed is a pure function of its universe.  Callers that gate
# an engine choice on packability (the service's --compact fallback, the
# distributed coordinator's engine auto-selection, the symbolic translator)
# share this probe instead of constructing a throwaway plan and catching.


def support_problem(spec_or_universe) -> Optional[str]:
    """Why the packed engines cannot represent this spec, or ``None``.

    Accepts a :class:`~repro.spec.Spec` or a bare universe.  Returns a
    human-readable reason string when packing is impossible (empty or
    oversized domains, unfingerprintable values, no variables) and
    ``None`` when :class:`PackedCodec` can be built.
    """
    universe = getattr(spec_or_universe, "universe", spec_or_universe)
    try:
        PackedCodec(universe)
    except CompactUnsupported as exc:
        return str(exc)
    return None


def supports(spec_or_universe) -> bool:
    """True when the packed engines (compact, symbolic) can represent
    this spec's universe."""
    return support_problem(spec_or_universe) is None


# -- guard trees --------------------------------------------------------------
#
# A branch constraint like  And(g1, Or(g2, g3))  is decomposed into a tree
# whose leaves memoize their own (typically tiny) packed footprints.  The
# frame conjuncts the action compiler attaches to each branch read nearly
# every variable, so memoizing whole constraints keys on nearly the full
# packed int and never hits; memoizing leaves recovers the sharing.
# Values are three-valued (0 / 1 / _ERR) so that short-circuit order and
# EvalError propagation match Expr.holds exactly: an ERR reaching the root
# rejects the candidate, just as SuccessorPlan treats an EvalError step.


class _Leaf:
    __slots__ = ("expr", "pmask", "cmask", "memo")

    def __init__(self, expr: Expr, codec: PackedCodec, registry: dict):
        self.expr = expr
        self.pmask = codec.mask_of(expr.free_vars())
        self.cmask = codec.mask_of(expr.primed_vars())
        self.memo = registry.setdefault(expr.key(), {})

    def value(self, packed, cand, ctx):
        if self.cmask:
            key = (packed & self.pmask, cand & self.cmask)
        else:
            key = packed & self.pmask
        v = self.memo.get(key)
        if v is None:
            try:
                v = 1 if self.expr.holds(ctx.env(packed, cand)) else 0
            except EvalError:
                v = _ERR
            self.memo[key] = v
        return v


class _AndNode:
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = children

    def value(self, packed, cand, ctx):
        for child in self.children:
            v = child.value(packed, cand, ctx)
            if v != 1:
                return v
        return 1


class _OrNode:
    __slots__ = ("children",)

    def __init__(self, children):
        self.children = children

    def value(self, packed, cand, ctx):
        for child in self.children:
            v = child.value(packed, cand, ctx)
            if v != 0:
                return v
        return 0


class _NotNode:
    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child

    def value(self, packed, cand, ctx):
        v = self.child.value(packed, cand, ctx)
        return v if v == _ERR else 1 - v


class _ImpliesNode:
    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs):
        self.lhs = lhs
        self.rhs = rhs

    def value(self, packed, cand, ctx):
        v = self.lhs.value(packed, cand, ctx)
        if v == _ERR:
            return _ERR
        if v == 0:
            return 1
        return self.rhs.value(packed, cand, ctx)


class _EquivNode:
    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs):
        self.lhs = lhs
        self.rhs = rhs

    def value(self, packed, cand, ctx):
        a = self.lhs.value(packed, cand, ctx)
        if a == _ERR:
            return _ERR
        b = self.rhs.value(packed, cand, ctx)
        if b == _ERR:
            return _ERR
        return 1 if a == b else 0


def _build_guard(expr: Expr, codec: PackedCodec, registry: dict):
    if isinstance(expr, And):
        return _AndNode([_build_guard(a, codec, registry)
                         for a in expr.args])
    if isinstance(expr, Or):
        return _OrNode([_build_guard(a, codec, registry)
                        for a in expr.args])
    if isinstance(expr, Not):
        return _NotNode(_build_guard(expr.arg, codec, registry))
    if isinstance(expr, Implies):
        return _ImpliesNode(_build_guard(expr.args[0], codec, registry),
                            _build_guard(expr.args[1], codec, registry))
    if isinstance(expr, Equiv):
        return _EquivNode(_build_guard(expr.args[0], codec, registry),
                          _build_guard(expr.args[1], codec, registry))
    return _Leaf(expr, codec, registry)


class _Ctx:
    """Lazy decode cache for the current source state / candidate."""

    __slots__ = ("codec", "_packed", "_state", "_cand", "_cstate")

    def __init__(self, codec: PackedCodec):
        self.codec = codec
        self._packed = self._state = self._cand = self._cstate = None

    def begin(self, packed):
        self._packed = packed
        self._state = None
        self._cand = self._cstate = None

    def state(self, packed):
        if self._state is None:
            self._state = self.codec.decode(packed)
        return self._state

    def env(self, packed, cand):
        state = self.state(packed)
        if cand is None:
            return Env(state)
        if self._cand != cand or self._cstate is None:
            self._cstate = self.codec.decode(cand)
            self._cand = cand
        return Env(state, self._cstate)


class PackedPlan:
    """A compiled next-state relation over packed ints.

    ``successors(packed)`` emits exactly the packed encodings of
    ``SuccessorPlan.successors(decode(packed))``, in the same order.
    Branch machinery is memoized per footprint:

    * unprimed guard conjuncts run before bindings (they kill most
      branches without touching candidate generation);
    * deterministic bindings cache the *code* their expression yields
      on each footprint (``_DEAD`` for EvalError / out-of-domain);
    * primed constraints run as guard trees against each candidate.

    Memo tables are shared across branches through per-expression
    registries keyed on ``Expr.key()``, so a frame conjunct appearing in
    every branch is evaluated once per footprint, not once per branch.
    """

    def __init__(self, spec):
        self.spec = spec
        self.codec = PackedCodec(spec.universe)
        c = self.codec
        full = compile_action(spec.next_action).plan(spec.universe)
        registry: dict = {}
        bind_registry: dict = {}
        self.branches = []
        for bp in full.branch_plans:
            pre_guards = []
            post_guards = []
            for expr in bp.constraints:
                tree = _build_guard(expr, c, registry)
                if expr.primed_vars():
                    post_guards.append(tree)
                else:
                    pre_guards.append(tree)
            bindings = []
            det_index: Dict[str, int] = {}
            written = [n for n, _e, _d in bp.bindings] + list(bp.free_names)
            for name, expr, domain in bp.bindings:
                det_index[name] = len(bindings)
                ident = (type(expr).__name__ == "Var" and not expr.primed
                         and expr.name == name)
                memo = bind_registry.setdefault((name, expr.key()), {})
                bindings.append((name, c.shift[name],
                                 (1 << c.width[name]) - 1,
                                 c.mask_of(expr.free_vars()),
                                 memo, expr, domain, ident))
            checks = []
            for name, expr in bp.checks:
                memo = bind_registry.setdefault((name, expr.key()), {})
                checks.append((det_index[name],
                               c.mask_of(expr.free_vars()),
                               memo, expr, name))
            fixed = [(det_index[name], c.shift[name],
                      (1 << c.width[name]) - 1)
                     for name in bp.fixed_bound]
            free = [(c.shift[name],
                     tuple(c.codes[name][v] for v in values))
                    for name, values in zip(bp.free_names, bp.free_values)]
            self.branches.append((pre_guards, bindings, checks, fixed,
                                  free, post_guards, ~c.mask_of(written)))
        self.ctx = _Ctx(c)

    def successors(self, packed: int) -> List[int]:
        codes = self.codec.codes
        ctx = self.ctx
        ctx.begin(packed)
        out: List[int] = []
        for pre, bindings, checks, fixed, free, post, keep in self.branches:
            alive = True
            for g in pre:
                if g.value(packed, None, ctx) != 1:
                    alive = False
                    break
            if not alive:
                continue
            det_bits = 0
            det = []
            for name, shift, width_m, mask, memo, expr, domain, ident \
                    in bindings:
                if ident:
                    code = (packed >> shift) & width_m
                else:
                    key = packed & mask
                    code = memo.get(key)
                    if code is None:
                        try:
                            value = expr.eval_state(ctx.state(packed))
                        except EvalError:
                            code = _DEAD
                        else:
                            code = codes[name][value] if value in domain \
                                else _DEAD
                        memo[key] = code
                    if code == _DEAD:
                        alive = False
                        break
                det_bits |= code << shift
                det.append(code)
            if not alive:
                continue
            for idx, mask, memo, expr, name in checks:
                key = packed & mask
                code = memo.get(key)
                if code is None:
                    try:
                        value = expr.eval_state(ctx.state(packed))
                    except EvalError:
                        code = _DEAD
                    else:
                        code = codes[name].get(value, _DEAD)
                    memo[key] = code
                if code != det[idx]:
                    alive = False
                    break
            if not alive:
                continue
            for idx, shift, width_m in fixed:
                if det[idx] != (packed >> shift) & width_m:
                    alive = False
                    break
            if not alive:
                continue
            base = (packed & keep) | det_bits
            if not free:
                ok = True
                for g in post:
                    if g.value(packed, base, ctx) != 1:
                        ok = False
                        break
                if ok:
                    out.append(base)
                continue
            for combo in itertools.product(*[cods for _s, cods in free]):
                cand = base
                for (shift, _cods), code in zip(free, combo):
                    cand |= code << shift
                ok = True
                for g in post:
                    if g.value(packed, cand, ctx) != 1:
                        ok = False
                        break
                if ok:
                    out.append(cand)
        return out
