"""Canonical specifications and components (paper, section 2.2).

A component specification has the canonical form

    ``∃x : Init ∧ □[N]_v ∧ L``        with  ``v = <m, x>``

where ``m`` are the component's output variables, ``x`` its internal
variables, ``e`` its input variables, ``Init`` constrains ``m`` and ``x``,
``N`` describes the component's steps (implying ``e' = e`` in an
interleaving representation), and ``L`` is a conjunction of fairness
conditions ``WF_<m,x>(A)`` / ``SF_<m,x>(A)``.

This module provides:

* :class:`Fairness` -- one WF/SF conjunct;
* :class:`Spec` -- an *unhidden* canonical specification
  ``Init ∧ □[N]_v ∧ L`` (the paper's ``IQM``, ``QE``, ``ICQ``, ...);
* :class:`Component` -- a Spec plus its input/output/internal variable
  partition and the hiding of internals (the paper's ``QM = ∃q : IQM``);
* :func:`conjoin` -- parallel composition of Specs by conjunction, using
  ``□[N₁]_v₁ ∧ □[N₂]_v₂ = □[[N₁]_v₁ ∧ [N₂]_v₂]_{v₁∪v₂}``;
* :func:`spec_of_formula` -- pattern-match a temporal formula built from
  ``StatePred``/``ActionBox``/``WF``/``SF`` conjuncts back into a
  :class:`Spec` (used by the Composition Theorem engine to turn hypothesis
  left-hand sides into explorable transition systems).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from .kernel.expr import And, Const, Expr, to_expr
from .kernel.action import square
from .kernel.state import Universe
from .temporal.formulas import ActionBox, Always, Hide, SF, StatePred, TAnd, TemporalFormula, WF


class Fairness:
    """One fairness conjunct ``WF_sub(action)`` or ``SF_sub(action)``.

    For Proposition 1 (closure computation) to apply, ``action`` must imply
    the specification's next-state action ``N``; :meth:`Spec.validate`
    checks the common structural case (the action is one of N's disjuncts),
    and :mod:`repro.core.propositions` offers a semantic check.
    """

    __slots__ = ("kind", "sub", "action")

    WEAK = "WF"
    STRONG = "SF"

    def __init__(self, kind: str, sub: Sequence[str], action: object):
        if kind not in (self.WEAK, self.STRONG):
            raise ValueError(f"fairness kind must be 'WF' or 'SF', got {kind!r}")
        self.kind = kind
        self.sub: Tuple[str, ...] = tuple(sub)
        self.action = to_expr(action)

    def formula(self) -> TemporalFormula:
        cls = WF if self.kind == self.WEAK else SF
        return cls(self.sub, self.action)

    def rename(self, mapping: Mapping[str, str]) -> "Fairness":
        sub = tuple(mapping.get(name, name) for name in self.sub)
        from .kernel.expr import Var
        action = self.action.substitute({old: Var(new) for old, new in mapping.items()})
        return Fairness(self.kind, sub, action)

    def __repr__(self) -> str:
        return f"Fairness({self.kind}, sub={self.sub})"


def weak_fairness(sub: Sequence[str], action: object) -> Fairness:
    return Fairness(Fairness.WEAK, sub, action)


def strong_fairness(sub: Sequence[str], action: object) -> Fairness:
    return Fairness(Fairness.STRONG, sub, action)


class Spec:
    """An unhidden canonical specification ``Init ∧ □[N]_v ∧ L``.

    ``universe`` must declare every variable the formula mentions,
    including input variables read (but not written) by ``N``.
    """

    __slots__ = ("name", "init", "next_action", "sub", "fairness", "universe")

    def __init__(
        self,
        name: str,
        init: object,
        next_action: object,
        sub: Sequence[str],
        universe: Universe,
        fairness: Sequence[Fairness] = (),
    ):
        self.name = name
        self.init = to_expr(init)
        self.next_action = to_expr(next_action)
        self.sub: Tuple[str, ...] = tuple(sub)
        self.universe = universe
        self.fairness: Tuple[Fairness, ...] = tuple(fairness)
        if not self.sub:
            raise ValueError(f"spec {name!r} needs a nonempty subscript tuple v")
        if self.init.primed_vars():
            raise ValueError(f"Init of spec {name!r} contains primed variables")
        self._check_universe()

    def _check_universe(self) -> None:
        mentioned = (
            self.init.free_vars()
            | self.next_action.free_vars()
            | self.next_action.primed_vars()
            | frozenset(self.sub)
        )
        for fair in self.fairness:
            mentioned |= fair.action.free_vars() | fair.action.primed_vars()
            mentioned |= frozenset(fair.sub)
        missing = sorted(name for name in mentioned if name not in self.universe)
        if missing:
            raise ValueError(
                f"spec {self.name!r} mentions undeclared variables: {missing}"
            )

    # -- formulas ------------------------------------------------------------

    def safety_formula(self) -> TemporalFormula:
        """``Init ∧ □[N]_v`` -- by Proposition 1, the closure of the spec."""
        return TAnd(StatePred(self.init), ActionBox(self.next_action, self.sub))

    def liveness_formula(self) -> Optional[TemporalFormula]:
        if not self.fairness:
            return None
        return TAnd(*[fair.formula() for fair in self.fairness])

    def formula(self) -> TemporalFormula:
        parts: List[TemporalFormula] = [
            StatePred(self.init),
            ActionBox(self.next_action, self.sub),
        ]
        parts.extend(fair.formula() for fair in self.fairness)
        return TAnd(*parts)

    # -- transformation --------------------------------------------------------

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Spec":
        """Variable renaming, the paper's ``F[z/o, q1/q]``.

        The universe is renamed accordingly; renaming two variables to the
        same name is rejected.
        """
        from .kernel.expr import Var

        values = list(mapping.values())
        if len(set(values)) != len(values):
            raise ValueError(f"renaming {mapping!r} is not injective")
        subst = {old: Var(new) for old, new in mapping.items()}
        new_domains = {
            mapping.get(var, var): self.universe.domain(var)
            for var in self.universe.variables
        }
        return Spec(
            name or f"{self.name}[{','.join(f'{v}/{k}' for k, v in mapping.items())}]",
            self.init.substitute(subst),
            self.next_action.substitute(subst),
            tuple(mapping.get(s, s) for s in self.sub),
            Universe(new_domains),
            [fair.rename(mapping) for fair in self.fairness],
        )

    def without_fairness(self, name: Optional[str] = None) -> "Spec":
        return Spec(name or f"C({self.name})", self.init, self.next_action,
                    self.sub, self.universe, ())

    def with_extra_universe(self, extra: Universe) -> "Spec":
        return Spec(self.name, self.init, self.next_action, self.sub,
                    self.universe.merge(extra), self.fairness)

    # -- validation -------------------------------------------------------------

    def validate_fairness_subactions(self) -> List[str]:
        """Check the structural hypothesis of Proposition 1: each fairness
        action should be one of N's disjuncts (or N itself).

        Returns a list of problems (empty = all good).  A semantic check is
        available in :func:`repro.core.propositions.check_subaction`.
        """
        from .kernel.expr import Or, structurally_equal

        disjuncts: List[Expr] = [self.next_action]
        if isinstance(self.next_action, Or):
            disjuncts.extend(self.next_action.args)
        problems = []
        for fair in self.fairness:
            if not any(structurally_equal(fair.action, d) for d in disjuncts):
                problems.append(
                    f"fairness action {fair.action!r} is not a disjunct of N "
                    f"in spec {self.name!r} (Proposition 1 hypothesis)"
                )
        return problems

    def __repr__(self) -> str:
        return (f"Spec({self.name!r}, sub={self.sub}, "
                f"fairness={[f.kind for f in self.fairness]})")


def conjoin(specs: Sequence[Spec], name: Optional[str] = None) -> Spec:
    """Parallel composition: the conjunction of canonical specifications.

    Uses ``□[N₁]_v₁ ∧ □[N₂]_v₂ = □[ [N₁]_v₁ ∧ [N₂]_v₂ ]_{v₁∪v₂}`` to stay in
    canonical form.  The result's universe is the merge of the parts'.
    """
    if not specs:
        raise ValueError("conjoin needs at least one spec")
    if len(specs) == 1:
        return specs[0]
    init = And(*[spec.init for spec in specs])
    next_action = And(*[square(spec.next_action, spec.sub) for spec in specs])
    sub: Tuple[str, ...] = ()
    seen = set()
    for spec in specs:
        for var in spec.sub:
            if var not in seen:
                seen.add(var)
                sub += (var,)
    universe = specs[0].universe
    for spec in specs[1:]:
        universe = universe.merge(spec.universe)
    fairness: List[Fairness] = []
    for spec in specs:
        fairness.extend(spec.fairness)
    return Spec(
        name or "(" + " ∧ ".join(spec.name for spec in specs) + ")",
        init,
        next_action,
        sub,
        universe,
        fairness,
    )


class Component:
    """A component: a canonical Spec plus its interface partition.

    The paper's queue component is::

        Component("Queue",
                  outputs=("i.ack", "o.sig", "o.val"),
                  internals=("q",),
                  inputs=("i.sig", "i.val", "o.ack"),
                  init=InitM, next_action=QM, fairness=[WF(...)],
                  universe=...)

    :meth:`formula` hides the internals (``QM = ∃q : IQM``);
    :meth:`inner_spec` is the unhidden ``IQM``.
    """

    __slots__ = ("name", "outputs", "internals", "inputs", "_spec")

    def __init__(
        self,
        name: str,
        outputs: Sequence[str],
        internals: Sequence[str],
        inputs: Sequence[str],
        init: object,
        next_action: object,
        universe: Universe,
        fairness: Sequence[Fairness] = (),
    ):
        self.name = name
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self.internals: Tuple[str, ...] = tuple(internals)
        self.inputs: Tuple[str, ...] = tuple(inputs)
        overlap = (set(self.outputs) & set(self.inputs)) | (
            set(self.outputs) & set(self.internals)
        ) | (set(self.inputs) & set(self.internals))
        if overlap:
            raise ValueError(
                f"component {name!r}: variables in several interface roles: "
                f"{sorted(overlap)}"
            )
        sub = self.outputs + self.internals  # the paper's v = <m, x>
        self._spec = Spec(name, init, next_action, sub, universe, fairness)

    # -- projections -----------------------------------------------------------

    @property
    def spec(self) -> Spec:
        """The unhidden canonical spec (internals visible)."""
        return self._spec

    inner_spec = spec

    @property
    def universe(self) -> Universe:
        return self._spec.universe

    @property
    def init(self) -> Expr:
        return self._spec.init

    @property
    def next_action(self) -> Expr:
        return self._spec.next_action

    @property
    def sub(self) -> Tuple[str, ...]:
        return self._spec.sub

    @property
    def fairness(self) -> Tuple[Fairness, ...]:
        return self._spec.fairness

    def visible_vars(self) -> Tuple[str, ...]:
        return self.outputs + self.inputs

    # -- formulas ----------------------------------------------------------------

    def formula(self) -> TemporalFormula:
        """The component's specification, internals hidden."""
        inner = self._spec.formula()
        if not self.internals:
            return inner
        bindings = {x: self.universe.domain(x) for x in self.internals}
        return Hide(bindings, inner)

    def inner_formula(self) -> TemporalFormula:
        return self._spec.formula()

    def safety_formula(self) -> TemporalFormula:
        """Closure with internals hidden: ``∃x : Init ∧ □[N]_v`` (valid by
        Propositions 1 and 2)."""
        inner = self._spec.safety_formula()
        if not self.internals:
            return inner
        bindings = {x: self.universe.domain(x) for x in self.internals}
        return Hide(bindings, inner)

    # -- transformation -------------------------------------------------------------

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Component":
        spec = self._spec.rename(mapping, name=name or self.name)
        renamed = Component.__new__(Component)
        renamed.name = name or spec.name
        renamed.outputs = tuple(mapping.get(v, v) for v in self.outputs)
        renamed.internals = tuple(mapping.get(v, v) for v in self.internals)
        renamed.inputs = tuple(mapping.get(v, v) for v in self.inputs)
        renamed._spec = Spec(renamed.name, spec.init, spec.next_action,
                             renamed.outputs + renamed.internals,
                             spec.universe, spec.fairness)
        return renamed

    # -- validation ---------------------------------------------------------------

    def validate_interleaving(self) -> List[str]:
        """Structural checks of section 2.2's conventions.

        * ``Init`` constrains only declared variables.  (The paper's own
          queue example has ``Init_E = CInit(i)``, which mentions the
          *receiver's* output ``i.ack`` -- "we arbitrarily consider the
          initial conditions on a channel to be part of the sender's
          initial predicate" -- so inputs are allowed in Init; only
          undeclared variables are flagged.)
        * ``N`` primes only outputs, internals, and inputs.
        """
        problems = []
        owned = set(self.outputs) | set(self.internals)
        declared = owned | set(self.inputs)
        stray_init = sorted(self._spec.init.free_vars() - declared)
        if stray_init:
            problems.append(
                f"component {self.name!r}: Init mentions undeclared variables "
                f"{stray_init}"
            )
        primed = self._spec.next_action.primed_vars()
        stray_primed = sorted(primed - owned - set(self.inputs))
        if stray_primed:
            problems.append(
                f"component {self.name!r}: N primes undeclared variables "
                f"{stray_primed}"
            )
        return problems

    def __repr__(self) -> str:
        return (f"Component({self.name!r}, outputs={self.outputs}, "
                f"internals={self.internals}, inputs={self.inputs})")


def spec_of_formula(
    formula: TemporalFormula,
    universe: Universe,
    name: str = "spec",
) -> Spec:
    """Pattern-match a conjunction of ``StatePred``/``ActionBox``/``WF``/``SF``
    (and nested ``TAnd``/``Always(StatePred)``) into a canonical Spec.

    This is the glue the Composition Theorem engine uses: hypothesis
    left-hand sides are conjunctions of component specs and ``Disjoint``
    conditions; after Propositions 1 and 2 strip closures and quantifiers,
    what remains is exactly this fragment.  ``Hide`` nodes are rejected --
    unhide first (Proposition 2).
    """
    inits: List[Expr] = []
    boxes: List[ActionBox] = []
    fairness: List[Fairness] = []

    def walk(tf: TemporalFormula) -> None:
        if isinstance(tf, TAnd):
            for part in tf.parts:
                walk(part)
        elif isinstance(tf, StatePred):
            inits.append(tf.pred)
        elif isinstance(tf, Always) and isinstance(tf.body, StatePred):
            # □P  =  P ∧ □[P']_{vars(P)}: if P holds and its variables are
            # untouched it keeps holding, so the box only needs to constrain
            # steps that change vars(P).
            pred = tf.body.pred
            inits.append(pred)
            pvars = tuple(sorted(pred.free_vars()))
            if pvars:
                boxes.append(ActionBox(pred.prime(), pvars))
        elif isinstance(tf, ActionBox):
            boxes.append(tf)
        elif isinstance(tf, SF):
            fairness.append(Fairness(Fairness.STRONG, tf.sub, tf.action))
        elif isinstance(tf, WF):
            fairness.append(Fairness(Fairness.WEAK, tf.sub, tf.action))
        else:
            raise TypeError(
                f"cannot normalise {tf!r} into a canonical Spec; "
                "apply Proposition 2 to remove Hide, and Proposition 1 to "
                "remove closures, first"
            )

    walk(formula)
    if not boxes:
        raise TypeError(f"no □[N]_v conjunct found in {formula!r}")
    init = And(*inits) if inits else Const(True)
    next_action = And(*[square(box.action, box.sub) for box in boxes])
    sub: Tuple[str, ...] = ()
    seen = set()
    for box in boxes:
        for var in box.sub:
            if var not in seen:
                seen.add(var)
                sub += (var,)
    return Spec(name, init, next_action, sub, universe, fairness)
