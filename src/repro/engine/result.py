"""Engine-neutral verdict and result types.

Every checking engine -- explicit BFS in any of its modes, bounded
symbolic -- answers an obligation with an :class:`EngineResult`: a
three-valued verdict, an optional concrete counterexample, and the
engine's own statistics object.  The third verdict, :data:`UNKNOWN`,
is what makes the protocol honest about bounded methods: a depth-k
symbolic run that finds no violation has *not* proved the invariant,
and must never be reported as :data:`HOLDS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..checker.results import CheckResult, Counterexample

__all__ = ["HOLDS", "VIOLATION", "UNKNOWN", "EngineResult"]

HOLDS = "holds"          # every reachable state satisfies the obligation
VIOLATION = "violation"  # a concrete counterexample was found
UNKNOWN = "unknown"      # no violation within the engine's bound; not a proof


@dataclass(frozen=True)
class EngineResult:
    """One obligation's outcome from one engine.

    ``depth`` is the bound at which the verdict was produced: the frame
    of the violation, or the exhausted bound for :data:`UNKNOWN`
    (``None`` for the unbounded explicit engine).
    """

    name: str
    verdict: str
    engine: str
    counterexample: Optional[Counterexample] = None
    stats: Optional[object] = None
    depth: Optional[int] = None
    notes: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.verdict not in (HOLDS, VIOLATION, UNKNOWN):
            raise ValueError(f"unknown verdict {self.verdict!r}")
        if (self.verdict == VIOLATION) != (self.counterexample is not None):
            raise ValueError(
                "a violation needs a counterexample and vice versa")

    @property
    def ok(self) -> bool:
        """True only for a definite :data:`HOLDS` -- an UNKNOWN bound
        exhaustion is not a pass."""
        return self.verdict == HOLDS

    def summary(self) -> str:
        tag = {HOLDS: "OK", VIOLATION: "FAILED", UNKNOWN: "UNKNOWN"}
        extra = ""
        if self.depth is not None:
            extra = (f" (depth {self.depth})" if self.verdict != UNKNOWN
                     else f" (no violation within depth {self.depth}; "
                          f"not a proof)")
        return f"[{tag[self.verdict]}] {self.name}{extra}"

    def to_check_result(self) -> CheckResult:
        """Bridge to the explicit checker's result type.

        UNKNOWN maps to ``ok=False`` with no counterexample plus an
        explanatory note -- the conservative reading for callers that
        only understand pass/fail.
        """
        notes = list(self.notes)
        if self.verdict == UNKNOWN:
            notes.append(f"unknown at depth {self.depth}: no violation "
                         f"within the bound; not a proof")
        return CheckResult(self.name, ok=(self.verdict == HOLDS),
                           counterexample=self.counterexample,
                           notes=tuple(notes))
