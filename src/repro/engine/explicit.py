"""The explicit-state engine behind the :class:`~repro.engine.Engine`
protocol.

This is a thin adapter: all the machinery (serial and parallel BFS,
the compact fingerprint-only engine, the distributed coordinator)
already exists in :mod:`repro.checker`; this class folds those modes
behind the engine protocol so callers pick *an engine* first and *a
mode* second.  Unlike the symbolic engine its verdicts are definitive:
exhaustive exploration yields HOLDS or VIOLATION, never UNKNOWN.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..checker import (
    CompactGraph,
    ExploreStats,
    check_invariant,
    check_invariant_compact,
    explore_compact,
    explore_parallel,
)
from ..checker.distributed import explore_distributed
from ..kernel.expr import Expr
from .result import HOLDS, VIOLATION, EngineResult

__all__ = ["ExplicitEngine"]


class ExplicitEngine:
    """Exhaustive BFS in one of the existing modes.

    ``mode`` selects the path: ``"serial"`` / ``"parallel"`` (the full
    dict-backed graph; serial is parallel with one worker), ``"compact"``
    (fingerprint-only exploration with on-demand trace regeneration),
    or ``"distributed"`` (requires ``nodes``, a sequence of worker
    URLs).  Every mode produces bit-for-bit identical graphs, so the
    verdicts and traces are mode-independent by construction.
    """

    name = "explicit"

    def __init__(self, mode: str = "serial", max_states: int = 200_000,
                 workers: int = 1,
                 nodes: Sequence[str] = ()) -> None:
        if mode not in ("serial", "parallel", "compact", "distributed"):
            raise ValueError(f"unknown explicit mode {mode!r}")
        if mode == "distributed" and not nodes:
            raise ValueError("distributed mode needs worker node URLs")
        self.mode = mode
        self.max_states = max_states
        self.workers = workers
        self.nodes = tuple(nodes)

    # -- exploration ---------------------------------------------------------

    def _explore(self, spec, stats: Optional[ExploreStats]):
        if self.mode == "compact":
            return explore_compact(spec, max_states=self.max_states,
                                   workers=self.workers, stats=stats)
        if self.mode == "distributed":
            return explore_distributed(spec, self.nodes,
                                       max_states=self.max_states,
                                       stats=stats)
        return explore_parallel(spec, max_states=self.max_states,
                                workers=self.workers, stats=stats)

    @staticmethod
    def _check(graph, invariant: Expr, name: Optional[str],
               stats: Optional[ExploreStats]):
        if isinstance(graph, CompactGraph):
            return check_invariant_compact(graph, invariant, name=name,
                                           run_stats=stats)
        return check_invariant(graph, invariant, name=name, run_stats=stats)

    # -- protocol ------------------------------------------------------------

    def check_invariant(self, spec, invariant: Expr,
                        name: Optional[str] = None,
                        stats: Optional[ExploreStats] = None) -> EngineResult:
        if stats is None:
            stats = ExploreStats()
        graph = self._explore(spec, stats)
        result = self._check(graph, invariant, name, stats)
        verdict = HOLDS if result.ok else VIOLATION
        return EngineResult(result.name, verdict, self.name,
                            counterexample=result.counterexample,
                            stats=stats, notes=tuple(result.notes))

    def check_obligations(
        self, spec, obligations: Iterable[Tuple[str, Expr]],
    ) -> List[EngineResult]:
        """Check every invariant obligation over ONE exploration."""
        stats = ExploreStats()
        graph = self._explore(spec, stats)
        out = []
        for obligation_name, expr in obligations:
            result = self._check(graph, expr, obligation_name, stats)
            verdict = HOLDS if result.ok else VIOLATION
            out.append(EngineResult(result.name, verdict, self.name,
                                    counterexample=result.counterexample,
                                    stats=stats,
                                    notes=tuple(result.notes)))
        return out
