"""Solver-side statistics for the bounded symbolic engine.

:class:`SolveStats` is the symbolic twin of
:class:`~repro.checker.stats.ExploreStats`: one mutable bag of counters
threaded through translation and solving, with the same reporting
surface (``summary()`` / ``format()`` / ``as_dict()`` / ``to_json()``)
so the CLI's ``--stats`` / ``--stats-json`` flags and the service's
result cache treat both engines uniformly.  Where the explicit engine
counts states and edges, the symbolic engine counts CNF variables and
clauses (per unrolling depth) and CDCL decisions/conflicts/propagations.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

__all__ = ["SolveStats"]


class SolveStats:
    """Counters for one bounded-model-checking run.

    ``record_depth`` appends one row per unrolling depth *k* (the CNF
    size at that depth, the solver effort, the verdict, and wall time),
    mirroring ``ExploreStats.record_level``'s per-level table.
    """

    __slots__ = ("engine", "backend", "variables", "clauses", "decisions",
                 "conflicts", "propagations", "learned_clauses", "restarts",
                 "max_depth", "result_depth", "depths", "phases",
                 "translate_seconds", "solve_seconds")

    def __init__(self) -> None:
        self.engine = "symbolic"
        self.backend = "cdcl"
        self.variables = 0          # CNF variables at the deepest unrolling
        self.clauses = 0            # CNF clauses at the deepest unrolling
        self.decisions = 0
        self.conflicts = 0
        self.propagations = 0
        self.learned_clauses = 0
        self.restarts = 0
        self.max_depth = -1         # deepest frame actually solved
        self.result_depth: Optional[int] = None  # depth of the SAT frame
        self.depths: List[Dict[str, object]] = []
        self.phases: Dict[str, float] = {}
        self.translate_seconds = 0.0
        self.solve_seconds = 0.0

    # -- recording -----------------------------------------------------------

    def record_depth(self, depth: int, variables: int, clauses: int,
                     verdict: str, seconds: float) -> None:
        """One row per BMC depth: CNF size, solver outcome, wall time."""
        self.max_depth = max(self.max_depth, depth)
        self.variables = max(self.variables, variables)
        self.clauses = max(self.clauses, clauses)
        self.depths.append({
            "depth": depth,
            "variables": variables,
            "clauses": clauses,
            "verdict": verdict,
            "seconds": seconds,
        })

    def record_solver(self, decisions: int, conflicts: int,
                      propagations: int, learned: int,
                      restarts: int) -> None:
        """Accumulate one solver invocation's effort counters."""
        self.decisions += decisions
        self.conflicts += conflicts
        self.propagations += propagations
        self.learned_clauses += learned
        self.restarts += restarts

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; repeated names accumulate (same contract
        as ``ExploreStats.phase``)."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed
            if name == "translate":
                self.translate_seconds += elapsed
            elif name == "solve":
                self.solve_seconds += elapsed

    # -- derived -------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def conflicts_per_sec(self) -> float:
        if self.solve_seconds <= 0.0:
            return 0.0
        return self.conflicts / self.solve_seconds

    # -- reporting -----------------------------------------------------------

    def format(self, indent: str = "") -> str:
        """The headline block -- symbolic counterpart of
        ``ExploreStats.format``."""
        lines = [
            f"{indent}engine: symbolic ({self.backend} backend)",
            f"{indent}cnf: {self.variables:,} vars, {self.clauses:,} "
            f"clauses at depth {max(self.max_depth, 0)}",
            f"{indent}solver: {self.decisions:,} decisions, "
            f"{self.conflicts:,} conflicts, {self.propagations:,} "
            f"propagations, {self.learned_clauses:,} learned, "
            f"{self.restarts} restarts",
        ]
        if self.phases:
            parts = ", ".join(f"{name} {secs:.3f}s"
                              for name, secs in sorted(self.phases.items()))
            lines.append(f"{indent}phases: {parts} "
                         f"(total {self.total_seconds:.3f}s)")
        return "\n".join(lines)

    def summary(self, indent: str = "") -> str:
        """:meth:`format` plus the per-depth table -- what ``--stats``
        prints for a symbolic run."""
        lines = [self.format(indent)]
        if self.result_depth is not None:
            lines.append(f"{indent}violation found at depth "
                         f"{self.result_depth}")
        if self.depths:
            lines.append(
                f"{indent}per-depth: "
                f"{'depth':>5} {'vars':>9} {'clauses':>9} "
                f"{'verdict':>8} {'seconds':>9}")
            for row in self.depths:
                lines.append(
                    f"{indent}           "
                    f"{row['depth']:>5} {row['variables']:>9,} "
                    f"{row['clauses']:>9,} {row['verdict']:>8} "
                    f"{row['seconds']:>9.3f}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict snapshot with stable keys (machine consumption,
        service result documents, ``--stats-json``)."""
        return {
            "engine": self.engine,
            "backend": self.backend,
            "variables": self.variables,
            "clauses": self.clauses,
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
            "max_depth": self.max_depth,
            "result_depth": self.result_depth,
            "depths": [dict(row) for row in self.depths],
            "phases": dict(self.phases),
            "translate_seconds": self.translate_seconds,
            "solve_seconds": self.solve_seconds,
            "total_seconds": self.total_seconds,
            "conflicts_per_sec": self.conflicts_per_sec,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`as_dict` snapshot as canonical (sorted-key) JSON --
        same contract as ``ExploreStats.to_json``."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def __repr__(self) -> str:
        return (f"SolveStats(vars={self.variables}, clauses={self.clauses}, "
                f"decisions={self.decisions}, conflicts={self.conflicts}, "
                f"max_depth={self.max_depth})")
