"""A small stdlib SAT layer for the bounded symbolic engine.

Two backends behind one two-method interface:

* :class:`CdclBackend` -- a self-contained CDCL solver (two-watched
  literals, 1UIP conflict learning, VSIDS-lite activity with phase
  saving, geometric restarts).  Pure Python, no dependencies; tuned for
  the tens-of-thousands-of-clauses formulas the translator emits, not
  for competition instances.
* :class:`Z3Backend` -- the same interface over ``z3-solver`` when that
  package happens to be installed.  It is strictly optional: the import
  is gated, and requesting it without the package raises
  :class:`BackendUnavailable` (the CLI maps this to a usage error).

A backend's ``solve(num_vars, clauses, stats=None)`` returns a model --
a list indexed ``1..num_vars`` of booleans (index 0 unused) -- or
``None`` for UNSAT.  Clauses are lists of nonzero DIMACS-style ints.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["BackendUnavailable", "CdclBackend", "Z3Backend", "get_backend"]


class BackendUnavailable(Exception):
    """The requested SAT backend cannot run in this environment."""


# -- CDCL ---------------------------------------------------------------------

_UNASSIGNED = -1
_RESTART_BASE = 100
_RESTART_GROWTH = 1.5


class _CdclState:
    """One solve() invocation's mutable state.

    Assignments are tracked per variable (`assign[v]` in {0, 1,
    _UNASSIGNED}); the trail stores DIMACS literals in assignment order.
    ``watches`` maps a literal to the clauses currently watching it;
    a clause is touched only when one of its two watched literals
    becomes false, which is what keeps propagation near-linear.
    """

    def __init__(self, num_vars: int, clauses: Sequence[Sequence[int]]):
        n = num_vars
        self.num_vars = n
        self.assign: List[int] = [_UNASSIGNED] * (n + 1)
        self.level: List[int] = [0] * (n + 1)
        self.reason: List[Optional[int]] = [None] * (n + 1)
        self.activity: List[float] = [0.0] * (n + 1)
        self.phase: List[int] = [0] * (n + 1)  # saved polarity (0 -> False)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        # lazy max-heap over (-activity, var); stale/assigned entries are
        # skipped at pop time, duplicates keep the freshest score present
        self.order: List[Tuple[float, int]] = [(0.0, v)
                                               for v in range(1, n + 1)]
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.unsat = False
        self.seen: List[bool] = [False] * (n + 1)
        # effort counters
        self.decisions = 0
        self.conflicts = 0
        self.propagations = 0
        self.learned = 0
        self.restarts = 0
        for clause in clauses:
            self._add_clause(list(clause))

    # -- clause database -----------------------------------------------------

    def _add_clause(self, lits: List[int]) -> None:
        seen = set()
        out = []
        for lit in lits:
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        if not out:
            self.unsat = True
            return
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self.unsat = True
            return
        ref = len(self.clauses)
        self.clauses.append(out)
        self.watches.setdefault(out[0], []).append(ref)
        self.watches.setdefault(out[1], []).append(ref)

    def _attach_learnt(self, lits: List[int]) -> int:
        ref = len(self.clauses)
        self.clauses.append(lits)
        self.learned += 1
        if len(lits) > 1:
            self.watches.setdefault(lits[0], []).append(ref)
            self.watches.setdefault(lits[1], []).append(ref)
        return ref

    # -- assignment ----------------------------------------------------------

    def _value(self, lit: int) -> int:
        v = self.assign[abs(lit)]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v if lit > 0 else 1 - v

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        val = self._value(lit)
        if val != _UNASSIGNED:
            return val == 1
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause ref or None."""
        assign = self.assign
        clauses = self.clauses
        watches = self.watches
        trail = self.trail
        while self.qhead < len(trail):
            lit = trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            false_lit = -lit
            watchers = watches.get(false_lit)
            if not watchers:
                continue
            kept: List[int] = []
            i = 0
            n = len(watchers)
            while i < n:
                ref = watchers[i]
                i += 1
                c = clauses[ref]
                # normalise: the false literal sits at position 1
                if c[0] == false_lit:
                    c[0], c[1] = c[1], c[0]
                first = c[0]
                fv = assign[first] if first > 0 else \
                    (_UNASSIGNED if assign[-first] == _UNASSIGNED
                     else 1 - assign[-first])
                if fv == 1:
                    kept.append(ref)
                    continue
                moved = False
                for k in range(2, len(c)):
                    other = c[k]
                    ov = assign[other] if other > 0 else \
                        (_UNASSIGNED if assign[-other] == _UNASSIGNED
                         else 1 - assign[-other])
                    if ov != 0:
                        c[1], c[k] = c[k], c[1]
                        w = watches.get(other)
                        if w is None:
                            watches[other] = [ref]
                        else:
                            w.append(ref)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ref)
                if not self._enqueue(first, ref):
                    # conflict: keep the untouched tail of the watch list
                    kept.extend(watchers[i:])
                    watches[false_lit] = kept
                    return ref
            watches[false_lit] = kept
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump(self, var: int) -> None:
        act = self.activity[var] + self.var_inc
        self.activity[var] = act
        heappush(self.order, (-act, var))
        if act > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self.order = [(-self.activity[v], v)
                          for v in range(1, self.num_vars + 1)
                          if self.assign[v] == _UNASSIGNED]
            self.order.sort()

    def _analyze(self, confl: int) -> (List[int], int):
        """First-UIP learning: returns the (learnt clause, backjump
        level).

        Relies on the propagation invariant that a reason clause's
        first literal is the one it propagated.
        """
        learnt: List[int] = [0]
        seen = self.seen
        cleanup: List[int] = []
        counter = 0
        p = 0
        index = len(self.trail) - 1
        current = len(self.trail_lim)
        while True:
            lits = self.clauses[confl]
            for q in (lits if p == 0 else lits[1:]):
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    cleanup.append(var)
                    self._bump(var)
                    if self.level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            confl = self.reason[abs(p)]
        learnt[0] = -p
        for var in cleanup:
            seen[var] = False
        if len(learnt) == 1:
            return learnt, 0
        # watch a highest-level literal besides the asserting one
        max_i = 1
        for k in range(2, len(learnt)):
            if self.level[abs(learnt[k])] > self.level[abs(learnt[max_i])]:
                max_i = k
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    def _backtrack(self, target: int) -> None:
        if len(self.trail_lim) <= target:
            return
        bound = self.trail_lim[target]
        for lit in reversed(self.trail[bound:]):
            var = abs(lit)
            self.phase[var] = self.assign[var]
            self.assign[var] = _UNASSIGNED
            self.reason[var] = None
            heappush(self.order, (-self.activity[var], var))
        del self.trail[bound:]
        del self.trail_lim[target:]
        self.qhead = len(self.trail)

    # -- search --------------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        order = self.order
        assign = self.assign
        while order:
            _neg_act, var = heappop(order)
            if assign[var] == _UNASSIGNED:
                return var if self.phase[var] == 1 else -var
        # the heap can run dry while unassigned vars remain (stale
        # entries were popped earlier); rebuild and retry once
        rebuilt = [(-self.activity[v], v)
                   for v in range(1, self.num_vars + 1)
                   if assign[v] == _UNASSIGNED]
        if not rebuilt:
            return None
        rebuilt.sort()
        self.order = rebuilt
        _neg_act, var = heappop(self.order)
        return var if self.phase[var] == 1 else -var

    def solve(self) -> Optional[List[int]]:
        if self.unsat:
            return None
        restart_limit = float(_RESTART_BASE)
        since_restart = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                self.conflicts += 1
                since_restart += 1
                if not self.trail_lim:
                    return None
                learnt, back = self._analyze(confl)
                self._backtrack(back)
                ref = self._attach_learnt(learnt)
                self._enqueue(learnt[0], ref if len(learnt) > 1 else None)
                self.var_inc *= 1.0 / 0.95
                if since_restart >= restart_limit:
                    self.restarts += 1
                    since_restart = 0
                    restart_limit *= _RESTART_GROWTH
                    self._backtrack(0)
                continue
            lit = self._pick_branch()
            if lit is None:
                return list(self.assign)
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)


class CdclBackend:
    """The default, dependency-free solver backend."""

    name = "cdcl"

    def solve(self, num_vars: int, clauses: Sequence[Sequence[int]],
              stats=None) -> Optional[List[bool]]:
        state = _CdclState(num_vars, clauses)
        assign = state.solve()
        if stats is not None:
            stats.record_solver(state.decisions, state.conflicts,
                                state.propagations, state.learned,
                                state.restarts)
        if assign is None:
            return None
        return [bool(v == 1) for v in assign]


# -- z3 (optional) ------------------------------------------------------------


class Z3Backend:
    """Same interface over ``z3-solver``; import-gated, never required."""

    name = "z3"

    def __init__(self) -> None:
        try:
            import z3  # type: ignore[import-not-found]
        except ImportError as exc:  # pragma: no cover - depends on env
            raise BackendUnavailable(
                "the z3 backend needs the optional z3-solver package; "
                "install it or use the default cdcl backend") from exc
        self._z3 = z3

    def solve(self, num_vars: int, clauses: Sequence[Sequence[int]],
              stats=None) -> Optional[List[bool]]:  # pragma: no cover
        z3 = self._z3
        bools = [None] + [z3.Bool(f"v{i}") for i in range(1, num_vars + 1)]
        solver = z3.Solver()
        for clause in clauses:
            solver.add(z3.Or(*[
                bools[lit] if lit > 0 else z3.Not(bools[-lit])
                for lit in clause]))
        if solver.check() != z3.sat:
            return None
        model = solver.model()
        out = [False] * (num_vars + 1)
        for i in range(1, num_vars + 1):
            out[i] = bool(model.eval(bools[i], model_completion=True))
        return out


_BACKENDS = {"cdcl": CdclBackend, "z3": Z3Backend}


def get_backend(name: str):
    """Instantiate a solver backend by name ('cdcl' or 'z3')."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise BackendUnavailable(
            f"unknown SAT backend {name!r}; "
            f"available: {', '.join(sorted(_BACKENDS))}") from None
    return factory()
