"""Checking engines behind one protocol.

The paper's finite-domain obligations can be decided more than one
way, and mature TLA+ tooling ships several engines over one spec
language (explicit TLC, symbolic Apalache).  This package is that
split for our checker:

* :class:`~repro.engine.explicit.ExplicitEngine` -- exhaustive BFS in
  any of the existing modes (serial / parallel / compact /
  distributed).  Definitive verdicts; cost grows with the reachable
  state count.
* :class:`~repro.engine.symbolic.SymbolicEngine` -- bounded model
  checking over a CNF translation solved by a small built-in CDCL
  solver (or ``z3`` when installed).  Cost grows with the unrolling
  depth, not the state count, so it answers on specs whose domains
  blow the BFS budget -- but a clean run up to depth *k* is
  :data:`~repro.engine.result.UNKNOWN`, never HOLDS.

An engine is anything with a ``name`` and the two checking methods of
:class:`Engine`; :func:`create_engine` instantiates one by registry
name, which is how the CLI's ``--engine`` flag and the service's
``engine`` request field resolve.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..kernel.expr import Expr
from .cnf import SymbolicUnsupported, Translation
from .explicit import ExplicitEngine
from .result import HOLDS, UNKNOWN, VIOLATION, EngineResult
from .sat import BackendUnavailable, CdclBackend, Z3Backend, get_backend
from .stats import SolveStats
from .symbolic import DEFAULT_DEPTH, SymbolicEngine

__all__ = [
    "Engine",
    "EngineResult",
    "ExplicitEngine",
    "SymbolicEngine",
    "SolveStats",
    "SymbolicUnsupported",
    "Translation",
    "BackendUnavailable",
    "CdclBackend",
    "Z3Backend",
    "get_backend",
    "HOLDS",
    "VIOLATION",
    "UNKNOWN",
    "DEFAULT_DEPTH",
    "available_engines",
    "create_engine",
    "register_engine",
]


class Engine:
    """The duck-typed engine protocol (also usable as a base class).

    ``check_invariant(spec, invariant, name=None)`` answers one
    invariant obligation with an :class:`EngineResult`;
    ``check_obligations(spec, obligations)`` answers a batch of
    ``(name, invariant)`` pairs, sharing whatever work the engine can
    share (one exploration, one translation).
    """

    name = "abstract"

    def check_invariant(self, spec, invariant: Expr,
                        name: Optional[str] = None) -> EngineResult:
        raise NotImplementedError

    def check_obligations(
        self, spec, obligations: Iterable[Tuple[str, Expr]],
    ) -> List[EngineResult]:
        return [self.check_invariant(spec, expr, name=obligation_name)
                for obligation_name, expr in obligations]


_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_engine(name: str, factory: Callable[..., object]) -> None:
    """Register an engine factory under *name* (keyword options are
    passed through by :func:`create_engine`)."""
    _REGISTRY[name] = factory


def available_engines() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def create_engine(name: str, **options) -> object:
    """Instantiate a registered engine by name.

    ``create_engine("explicit", mode="compact", workers=4)``,
    ``create_engine("symbolic", depth=12)``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; "
            f"available: {', '.join(available_engines())}") from None
    return factory(**options)


register_engine("explicit", ExplicitEngine)
register_engine("symbolic", SymbolicEngine)
