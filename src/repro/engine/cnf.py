"""Spec -> CNF translation for bounded model checking.

The bridge between the kernel's compiled actions and a SAT solver.  The
encoding reuses :class:`~repro.kernel.packed.PackedCodec`'s bit-field
layout directly: each variable's field of ``width`` bits becomes
``width`` boolean CNF variables per time frame, so a satisfying
assignment's frame bits ARE a packed int and counterexample decoding is
literally ``codec.decode``.

The translation is built once as *templates* -- clause lists over an
abstract frame interface (pre bits, post bits, per-instance auxiliary
variables) -- and stamped out per unrolling depth by renumbering:

* **transition template** (pre + post blocks): one selector variable
  per ``SuccessorPlan`` branch, implying the CNF encoding of that
  branch's guards, bindings, checks and step constraints; plus a
  *stutter* selector implying bitwise pre = post; plus the clause
  "some selector fires".  Including the stutter disjunct makes frame
  ``k`` reach exactly the states at BFS distance <= ``k``, so the
  incremental depth loop finds a violation at precisely the level the
  explicit BFS would.
* **init / violation / validity templates** (single frame): the initial
  predicate asserted at frame 0, the invariant's *definite falsehood*
  asserted at the last frame, and per-variable clauses forbidding the
  unused codes of fields whose domain is not a power of two.

Guard expressions are compiled with the same three-valued (0 / 1 / ERR)
semantics as ``packed.py``'s guard trees: every connective node carries
a (value, err) literal pair, ``err`` propagates in short-circuit order,
and a branch selector asserts ``value AND NOT err`` for each conjunct --
an ``EvalError`` anywhere disables the branch, exactly as
``SuccessorPlan.successors`` treats it.  Leaves are compiled by
enumerating their (tiny) support -- the product of the domains they
read -- into one clause per combination; quantifiers are expanded over
their finite domains first, which is what keeps leaf supports tiny.
Specs whose leaves read unboundedly large supports raise
:class:`SymbolicUnsupported`; callers fall back to the explicit engine.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..kernel.action import compile_action
from ..kernel.expr import (
    And,
    Const,
    Env,
    Equiv,
    EvalError,
    Exists,
    Expr,
    Forall,
    Implies,
    Not,
    Or,
    Var,
)
from ..kernel.packed import PackedCodec, support_problem
from ..kernel.state import State

__all__ = ["SymbolicUnsupported", "Translation"]

_ERR = 2  # third truth value, matching packed.py's guard trees
_DEAD = object()  # EvalError sentinel: matches no domain value

# A leaf may read at most this many (pre x post) domain combinations;
# beyond it the enumeration encoding stops paying for itself and the
# caller should use the explicit engine instead.
MAX_LEAF_SUPPORT = 4096
# Total encoded connective/leaf instances per template (quantifier
# expansion can explode; this bounds the translation, not the solver).
MAX_NODES = 200_000

_TRUE = 1
_FALSE = -1


class SymbolicUnsupported(Exception):
    """This spec cannot be translated to CNF; use the explicit engine."""


class _Template:
    """Clauses over an abstract frame interface.

    Template variable 1 is the global TRUE constant; variables
    ``2 .. interface+1`` are the frame bits (pre block then, for
    two-frame templates, post block); anything above is auxiliary and
    renumbered fresh per instantiation.
    """

    __slots__ = ("interface", "num_aux", "clauses")

    def __init__(self, interface: int, num_aux: int,
                 clauses: List[List[int]]):
        self.interface = interface
        self.num_aux = num_aux
        self.clauses = clauses


class _Builder:
    """Accumulates template clauses and the three-valued encoding."""

    def __init__(self, codec: PackedCodec, frames: int,
                 max_leaf_support: int = MAX_LEAF_SUPPORT):
        self.codec = codec
        self.bits = codec.bits
        self.frames = frames
        self.interface = frames * codec.bits
        self._next = self.interface + 2
        self.clauses: List[List[int]] = []
        self.max_leaf_support = max_leaf_support
        self.nodes = 0
        self._registry: Dict[object, Tuple[int, int]] = {}

    # -- raw CNF -------------------------------------------------------------

    def new_var(self) -> int:
        v = self._next
        self._next += 1
        return v

    def add(self, clause: List[int]) -> None:
        self.clauses.append(clause)

    def template(self) -> _Template:
        return _Template(self.interface, self._next - self.interface - 2,
                         self.clauses)

    def _tick(self) -> None:
        self.nodes += 1
        if self.nodes > MAX_NODES:
            raise SymbolicUnsupported(
                f"translation exceeds {MAX_NODES} nodes "
                f"(quantifier expansion too large)")

    # -- bit literals --------------------------------------------------------

    def bit(self, name: str, i: int, primed: bool) -> int:
        """The template variable of bit *i* of *name*'s field."""
        offset = self.bits if primed else 0
        return 2 + offset + self.codec.shift[name] + i

    def _eq_code_lits(self, name: str, code: int, primed: bool) -> List[int]:
        """Literals that are ALL true iff the field holds *code*."""
        return [self.bit(name, i, primed) if (code >> i) & 1
                else -self.bit(name, i, primed)
                for i in range(self.codec.width[name])]

    def _neq_code_lits(self, name: str, code: int, primed: bool) -> List[int]:
        """Literals whose disjunction says the field differs from *code*."""
        return [-lit for lit in self._eq_code_lits(name, code, primed)]

    # -- gates ---------------------------------------------------------------

    def define_and(self, lits: List[int]) -> int:
        out = []
        for lit in lits:
            if lit == _FALSE:
                return _FALSE
            if lit != _TRUE and lit not in out:
                out.append(lit)
        if not out:
            return _TRUE
        if len(out) == 1:
            return out[0]
        g = self.new_var()
        for lit in out:
            self.add([-g, lit])
        self.add([g] + [-lit for lit in out])
        return g

    def define_or(self, lits: List[int]) -> int:
        return -self.define_and([-lit for lit in lits])

    # -- three-valued expression encoding ------------------------------------
    #
    # encode() returns a (value, err) literal pair with the invariant
    # that err=true forces value=false; err is the constant FALSE for
    # subtrees that provably cannot raise EvalError, which keeps the
    # common all-total case free of error plumbing.

    def encode(self, expr: Expr) -> Tuple[int, int]:
        key = expr.key()
        cached = self._registry.get(key)
        if cached is not None:
            return cached
        self._tick()
        pair = self._encode(expr)
        self._registry[key] = pair
        return pair

    def _encode(self, expr: Expr) -> Tuple[int, int]:
        if isinstance(expr, And):
            return self._encode_and([self.encode(a) for a in expr.args])
        if isinstance(expr, Or):
            return self._encode_or([self.encode(a) for a in expr.args])
        if isinstance(expr, Not):
            v, e = self.encode(expr.arg)
            return self.define_and([-v, -e]), e
        if isinstance(expr, Implies):
            va, ea = self.encode(expr.args[0])
            vb, eb = self.encode(expr.args[1])
            err = self.define_or([ea, self.define_and([va, eb])])
            val = self.define_or([self.define_and([-va, -ea]),
                                  self.define_and([va, vb])])
            return val, err
        if isinstance(expr, Equiv):
            va, ea = self.encode(expr.args[0])
            vb, eb = self.encode(expr.args[1])
            err = self.define_or([ea, eb])
            val = self.define_or([
                self.define_and([va, vb]),
                self.define_and([-va, -ea, -vb, -eb])])
            return val, err
        if isinstance(expr, Exists):
            return self._encode_or(
                [self.encode(expr.body.substitute({expr.var: Const(value)}))
                 for value in expr.domain.values()])
        if isinstance(expr, Forall):
            return self._encode_and(
                [self.encode(expr.body.substitute({expr.var: Const(value)}))
                 for value in expr.domain.values()])
        return self._encode_leaf(expr)

    def _encode_and(self, pairs: List[Tuple[int, int]]) -> Tuple[int, int]:
        # value: all children true.  err: some child errs while every
        # child *before* it is true (short-circuit order, as in
        # packed._AndNode / Expr.holds).
        val = self.define_and([v for v, _e in pairs])
        err_terms = []
        prefix = _TRUE
        for v, e in pairs:
            if e != _FALSE:
                err_terms.append(self.define_and([prefix, e]))
            prefix = self.define_and([prefix, v])
        err = self.define_or(err_terms) if err_terms else _FALSE
        return val, err

    def _encode_or(self, pairs: List[Tuple[int, int]]) -> Tuple[int, int]:
        # dual: scan for the first non-false child; an err child hit
        # first wins over a later true child.
        val_terms = []
        err_terms = []
        prefix = _TRUE  # "every child so far was definitely false"
        for v, e in pairs:
            val_terms.append(self.define_and([prefix, v]))
            if e != _FALSE:
                err_terms.append(self.define_and([prefix, e]))
            prefix = self.define_and([prefix, -v, -e]
                                     if e != _FALSE else [prefix, -v])
        val = self.define_or(val_terms) if val_terms else _FALSE
        err = self.define_or(err_terms) if err_terms else _FALSE
        return val, err

    # -- leaves --------------------------------------------------------------

    def _support(self, expr: Expr) -> List[Tuple[str, bool]]:
        names = [(name, False) for name in sorted(expr.free_vars())]
        names += [(name, True) for name in sorted(expr.primed_vars())]
        for name, _primed in names:
            if name not in self.codec.shift:
                raise SymbolicUnsupported(
                    f"leaf {expr!r} reads {name!r}, which is not a "
                    f"packed state variable")
        return names

    def _enumerate(self, expr: Expr, support: List[Tuple[str, bool]]):
        """Yield ``(codes, value)`` over the leaf's support product,
        where value is 0/1/_ERR exactly as ``packed._Leaf`` computes it."""
        count = 1
        for name, _primed in support:
            count *= len(self.codec.values[name])
        if count > self.max_leaf_support:
            raise SymbolicUnsupported(
                f"leaf {expr!r} reads {count} domain combinations "
                f"(cap {self.max_leaf_support})")
        ranges = [range(len(self.codec.values[name]))
                  for name, _primed in support]
        for codes in itertools.product(*ranges):
            pre: Dict[str, object] = {}
            post: Dict[str, object] = {}
            for (name, primed), code in zip(support, codes):
                target = post if primed else pre
                target[name] = self.codec.values[name][code]
            env = Env(State._trusted(pre),
                      State._trusted(post) if post else None)
            try:
                value = 1 if expr.holds(env) else 0
            except EvalError:
                value = _ERR
            yield codes, value

    def _encode_leaf(self, expr: Expr) -> Tuple[int, int]:
        if isinstance(expr, Const):
            if expr.value is True:
                return _TRUE, _FALSE
            if expr.value is False:
                return _FALSE, _FALSE
        unchanged = self._as_unchanged(expr)
        if unchanged is not None:
            eqs = [self.define_or([
                       self.define_and([self.bit(unchanged, i, False),
                                        self.bit(unchanged, i, True)]),
                       self.define_and([-self.bit(unchanged, i, False),
                                        -self.bit(unchanged, i, True)])])
                   for i in range(self.codec.width[unchanged])]
            return self.define_and(eqs), _FALSE
        support = self._support(expr)
        rows = list(self._enumerate(expr, support))
        seen = {value for _codes, value in rows}
        if seen == {1}:
            return _TRUE, _FALSE
        if seen == {0}:
            return _FALSE, _FALSE
        if seen == {_ERR}:
            return _FALSE, _TRUE
        val = self.new_var()
        err = self.new_var() if _ERR in seen else _FALSE
        for codes, value in rows:
            differs: List[int] = []
            for (name, primed), code in zip(support, codes):
                differs.extend(self._neq_code_lits(name, code, primed))
            self.add(differs + [val if value == 1 else -val])
            if err != _FALSE:
                self.add(differs + [err if value == _ERR else -err])
        return val, err

    def _as_unchanged(self, expr: Expr) -> Optional[str]:
        """``x' = x`` (either orientation) -- encoded as bit equality
        instead of a |domain|^2 enumeration."""
        if type(expr).__name__ != "Eq" or len(expr.args) != 2:
            return None
        lhs, rhs = expr.args
        if (isinstance(lhs, Var) and isinstance(rhs, Var)
                and lhs.name == rhs.name and lhs.primed != rhs.primed
                and lhs.name in self.codec.shift):
            return lhs.name
        return None

    def encode_assignment(self, name: str, expr: Expr) -> int:
        """The CNF value of binding/check ``name' = expr`` (*expr*
        prime-free, per ``_as_binding``).

        Enumerates only *expr*'s pre-state support: each combination
        either determines a valid code for ``name`` (value literal
        biconditional with "post field = code") or is dead -- EvalError
        and out-of-domain results disable the branch exactly as
        ``SuccessorPlan.successors`` drops those candidates.
        """
        self._tick()
        support = self._support(expr)
        width = self.codec.width[name]
        codes = self.codec.codes[name]
        count = 1
        for sname, _primed in support:
            count *= len(self.codec.values[sname])
        if count > self.max_leaf_support:
            raise SymbolicUnsupported(
                f"binding {name}' = {expr!r} reads {count} domain "
                f"combinations (cap {self.max_leaf_support})")
        val = self.new_var()
        ranges = [range(len(self.codec.values[sname]))
                  for sname, _primed in support]
        for combo in itertools.product(*ranges):
            pre: Dict[str, object] = {}
            for (sname, _primed), code in zip(support, combo):
                pre[sname] = self.codec.values[sname][code]
            differs: List[int] = []
            for (sname, primed), code in zip(support, combo):
                differs.extend(self._neq_code_lits(sname, code, primed))
            try:
                value = expr.eval(Env(State._trusted(pre)))
            except EvalError:
                value = _DEAD
            try:
                target = codes.get(value)
            except TypeError:
                target = None  # unhashable result can match no code
            if target is None:
                self.add(differs + [-val])
                continue
            for i in range(width):
                bit = self.bit(name, i, True)
                lit = bit if (target >> i) & 1 else -bit
                self.add(differs + [-val, lit])
            self.add(differs + self._neq_code_lits(name, target, True)
                     + [val])
        return val


def _build_transition(codec: PackedCodec, spec) -> _Template:
    plan = compile_action(spec.next_action).plan(spec.universe)
    b = _Builder(codec, frames=2)
    selectors: List[int] = []
    for bp in plan.branch_plans:
        sel = b.new_var()
        conjuncts: List[Tuple[int, int]] = []
        for name, expr, _domain in bp.bindings:
            conjuncts.append((b.encode_assignment(name, expr), _FALSE))
        for name, expr in bp.checks:
            conjuncts.append((b.encode_assignment(name, expr), _FALSE))
        for expr in bp.constraints:
            conjuncts.append(b.encode(expr))
        dead = False
        for v, e in conjuncts:
            if v == _FALSE or e == _TRUE:
                dead = True
                break
        if dead:
            continue
        for v, e in conjuncts:
            if v != _TRUE:
                b.add([-sel, v])
            if e != _FALSE:
                b.add([-sel, -e])
        selectors.append(sel)
    stutter = b.new_var()
    for i in range(codec.bits):
        pre, post = 2 + i, 2 + codec.bits + i
        b.add([-stutter, -pre, post])
        b.add([-stutter, pre, -post])
    b.add(selectors + [stutter])
    return b.template()


def _build_predicate(codec: PackedCodec, expr: Expr,
                     negate: bool) -> _Template:
    """A single-frame template asserting *expr* definitely true
    (``negate=False``) or definitely false (``negate=True`` -- the
    violation target: value 0 AND no EvalError, mirroring the explicit
    checker, which propagates evaluation errors instead of reporting
    them as violations)."""
    b = _Builder(codec, frames=1)
    v, e = b.encode(expr)
    root = b.define_and([-v, -e]) if negate else b.define_and([v, -e])
    if root == _FALSE:
        b.add([])  # unsatisfiable template
    elif root != _TRUE:
        b.add([root])
    return b.template()


def _build_validity(codec: PackedCodec) -> _Template:
    """Forbid the unused codes of every field whose domain size is not
    a power of two (frame bits must decode to real domain values)."""
    b = _Builder(codec, frames=1)
    for name in codec.variables:
        size = len(codec.values[name])
        for code in range(size, 1 << codec.width[name]):
            b.add(b._neq_code_lits(name, code, False))
    return b.template()


class Translation:
    """The full BMC translation of one (spec, invariant) pair.

    ``assemble(k)`` stamps the templates into a concrete CNF for
    unrolling depth *k*: init at frame 0, transitions between
    consecutive frames, domain validity everywhere, and the invariant's
    definite falsehood at frame *k*.  ``decode_model`` turns a
    satisfying assignment back into the list of concrete frame states
    via ``PackedCodec.decode``.
    """

    def __init__(self, spec, invariant: Expr):
        problem = support_problem(spec)
        if problem is not None:
            raise SymbolicUnsupported(problem)
        if invariant.primed_vars():
            raise SymbolicUnsupported(
                f"invariant {invariant!r} mentions primed variables")
        self.spec = spec
        self.invariant = invariant
        self.codec = PackedCodec(spec.universe)
        self.bits = self.codec.bits
        if self.bits == 0:
            raise SymbolicUnsupported(
                "universe packs to zero bits; nothing to solve")
        self.trans = _build_transition(self.codec, spec)
        self.init = _build_predicate(self.codec, spec.init, negate=False)
        self.bad = _build_predicate(self.codec, invariant, negate=True)
        self.valid = _build_validity(self.codec)

    # -- assembly ------------------------------------------------------------

    def assemble(self, depth: int) -> Tuple[int, List[List[int]]]:
        """(num_vars, clauses) for unrolling depth *depth* (>= 0)."""
        frames = depth + 1
        num_vars = 1 + frames * self.bits
        clauses: List[List[int]] = [[1]]

        def stamp(template: _Template, frame: int) -> None:
            nonlocal num_vars
            base = num_vars - template.interface - 1
            num_vars += template.num_aux
            bits = self.bits
            start = 1 + frame * bits
            for clause in template.clauses:
                mapped = []
                for lit in clause:
                    a = abs(lit)
                    if a == 1:
                        g = 1
                    elif a <= template.interface + 1:
                        g = start + a - 1
                    else:
                        g = base + a
                    mapped.append(g if lit > 0 else -g)
                clauses.append(mapped)

        stamp(self.init, 0)
        for frame in range(frames):
            stamp(self.valid, frame)
        for frame in range(depth):
            stamp(self.trans, frame)
        stamp(self.bad, depth)
        return num_vars, clauses

    # -- decoding ------------------------------------------------------------

    def decode_model(self, model: List[bool], depth: int) -> List[State]:
        """The concrete state at each frame of a satisfying assignment."""
        states = []
        for frame in range(depth + 1):
            start = 2 + frame * self.bits
            packed = 0
            for i in range(self.bits):
                if model[start + i]:
                    packed |= 1 << i
            states.append(self.codec.decode(packed))
        return states
