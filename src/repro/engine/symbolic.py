"""The bounded symbolic (BMC) checking engine.

``SymbolicEngine.check_invariant`` translates the spec once
(:class:`~repro.engine.cnf.Translation`), then runs the incremental
depth loop: for k = 0, 1, ... bound, assemble the depth-k CNF and hand
it to the SAT backend.  The transition encoding includes a stutter
disjunct, so frame k covers every state at BFS distance <= k and the
first satisfiable depth equals the level at which the explicit BFS
would find its first violating state -- which is what makes the
differential tests able to demand trace-length equality, not just
verdict agreement.

A satisfying assignment decodes frame by frame through
``PackedCodec.decode`` into a concrete
:class:`~repro.kernel.behavior.FiniteBehavior` that replays on the
concrete spec.  An unsatisfiable run up to the bound yields
:data:`~repro.engine.result.UNKNOWN` -- never HOLDS: bounded search
proves nothing about deeper states.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, List, Optional, Tuple

from ..checker.results import Counterexample
from ..kernel.behavior import FiniteBehavior
from ..kernel.expr import Expr
from .cnf import Translation
from .result import UNKNOWN, VIOLATION, EngineResult
from .sat import get_backend
from .stats import SolveStats

__all__ = ["SymbolicEngine", "DEFAULT_DEPTH"]

DEFAULT_DEPTH = 10


class SymbolicEngine:
    """Bounded model checking behind the :class:`~repro.engine.Engine`
    protocol.

    ``depth`` is the unrolling bound; ``backend`` names the SAT backend
    ('cdcl' -- the stdlib default -- or 'z3' when that optional package
    is installed).
    """

    name = "symbolic"

    def __init__(self, depth: int = DEFAULT_DEPTH,
                 backend: str = "cdcl", minimize: bool = True) -> None:
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.depth = depth
        self.backend = backend
        self.minimize = minimize

    def check_invariant(self, spec, invariant: Expr,
                        name: Optional[str] = None,
                        stats: Optional[SolveStats] = None) -> EngineResult:
        """VIOLATION with a decoded trace, or UNKNOWN at the bound.

        Raises :class:`~repro.engine.cnf.SymbolicUnsupported` when the
        spec cannot be translated (unpackable universe, oversized leaf
        supports) -- callers fall back to the explicit engine.
        """
        label = name or f"invariant {invariant!r}"
        if stats is None:
            stats = SolveStats()
        stats.backend = self.backend
        solver = get_backend(self.backend)
        with stats.phase("translate"):
            translation = Translation(spec, invariant)

        def solve_at(k: int):
            started = perf_counter()
            with stats.phase("translate"):
                num_vars, clauses = translation.assemble(k)
            with stats.phase("solve"):
                model = solver.solve(num_vars, clauses, stats)
            stats.record_depth(k, num_vars, len(clauses),
                               "sat" if model is not None else "unsat",
                               perf_counter() - started)
            return model

        # One solve at the bound decides violation-within-k: the stutter
        # disjunct makes frame k cover every state at distance <= k, so
        # satisfiability is monotone in the depth.  (Solving each depth
        # in turn would spend most of its time on the expensive UNSAT
        # refutations just below the violation level.)
        model = solve_at(self.depth)
        if model is None:
            return EngineResult(label, UNKNOWN, self.name, stats=stats,
                                depth=self.depth)
        best_depth = self.depth
        if self.minimize:
            # binary search the smallest satisfiable depth; by the same
            # monotonicity it equals the BFS level of the first violating
            # state, so the decoded trace is a shortest counterexample
            lo, hi = 0, self.depth
            while lo < hi:
                mid = (lo + hi) // 2
                candidate = solve_at(mid)
                if candidate is not None:
                    model, hi = candidate, mid
                else:
                    lo = mid + 1
            best_depth = hi
        stats.result_depth = best_depth
        frames = translation.decode_model(model, best_depth)
        trace = FiniteBehavior(tuple(_strip_stutter(frames)))
        cex = Counterexample(
            trace, f"state violates invariant {invariant!r}")
        return EngineResult(label, VIOLATION, self.name,
                            counterexample=cex, stats=stats,
                            depth=best_depth)

    def check_obligations(
        self, spec, obligations: Iterable[Tuple[str, Expr]],
    ) -> List[EngineResult]:
        """Check each named invariant obligation independently."""
        return [self.check_invariant(spec, expr, name=obligation_name)
                for obligation_name, expr in obligations]


def _strip_stutter(frames: List) -> List:
    """Drop consecutive duplicate frames (stutter padding), keeping the
    first occurrence; the result replays as real steps on the spec."""
    out = [frames[0]]
    for state in frames[1:]:
        if state != out[-1]:
            out.append(state)
    return out
