"""FIG9: the Composition Theorem proof for open queues (Figure 9).

Regenerates, step by step, the paper's proof of

    G ∧ (QE[1] ⊳ QM[1]) ∧ (QE[2] ⊳ QM[2])  ⇒  (QE[dbl] ⊳ QM[dbl])

and also the *invalidity* of the unconditional formula (3): without the
interleaving condition G, hypotheses 1 fail with simultaneous-step
counterexamples, exactly as section A.5 argues.
"""

import pytest

from repro.core import CompositionTheorem
from repro.systems.queue import DoubleQueue

from conftest import report


@pytest.mark.parametrize("size", [1, 2])
def test_fig9_proof(benchmark, size):
    dq = DoubleQueue(size)

    cert = benchmark.pedantic(
        lambda: dq.composition_theorem().verify(), rounds=1, iterations=1)
    assert cert.ok
    report(f"FIG9: composition proof, N={size}", [
        ["step", "obligation", "verdict", "states"],
        *[[ob.oid, ob.description, "OK" if ob.ok else "FAIL",
           ob.result.stats.get("states", "-") if ob.result else "-"]
          for ob in cert.obligations],
        ["", "total states explored", "", cert.total_states_explored()],
    ])


def test_fig9_certificate_structure(benchmark):
    """The certificate mirrors Figure 9: Propositions 1/2 in step 0,
    Propositions 3/4 inside hypothesis 2a."""
    cert = benchmark.pedantic(
        lambda: DoubleQueue(1).composition_theorem().verify(),
        rounds=1, iterations=1)
    assert cert.ok
    by_oid = {ob.oid: ob for ob in cert.obligations}
    setup_rules = [rule.proposition for rule in by_oid["0"].rules]
    assert "Proposition 2" in setup_rules
    h2a_rules = [rule.proposition for rule in by_oid["2a"].rules]
    assert "Proposition 3" in h2a_rules and "Proposition 4" in h2a_rules
    print("\n" + cert.render())


def test_fig9_formula3_invalid(benchmark):
    """Formula (3) -- no G -- is invalid for interleaving representations."""
    dq = DoubleQueue(1)

    cert = benchmark.pedantic(
        lambda: CompositionTheorem(
            [dq.ag_q1(), dq.ag_q2()], dq.ag_goal(),
            disjoint=None, mapping=dq.mapping, name="formula (3)").verify(),
        rounds=1, iterations=1)
    assert not cert.ok
    failed = [ob.oid for ob in cert.failed_obligations()]
    report("FIG9 counterpart: formula (3) without G", [
        ["failed hypotheses", ", ".join(failed)],
        ["diagnosis", "simultaneous output changes of different components"],
    ])
    first = cert.failed_obligations()[0]
    assert first.result is not None and first.result.counterexample is not None
