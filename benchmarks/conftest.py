"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one figure / experiment of the paper
(see DESIGN.md's per-experiment index) and measures the runtime of the
mechanised check with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` shows the regenerated tables/series alongside the timings.
"""

from __future__ import annotations


def report(title: str, rows) -> None:
    """Print a small aligned table (the regenerated figure content)."""
    rows = [[str(cell) for cell in row] for row in rows]
    if not rows:
        return
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    print(f"\n--- {title} ---")
    for row in rows:
        print("  " + "  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
