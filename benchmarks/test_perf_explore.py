"""PERF: explorer hot-path — compiled-plan successors vs the pre-PR path.

The checker overhaul (compiled-action successor plans built once per run,
set-backed O(1) edge insertion, cached universe variable tuples) targets
the ``explore()`` hot loop.  This benchmark pits the new path against a
**faithful snapshot of the pre-PR implementation** (kept below, so the
comparison is machine-independent) on the appendix queue system and the
Figure 1 circuit, and asserts the >= 1.5x speedup recorded in ISSUE 1.

Pre-PR baseline, measured at the seed commit on the dev container
(median of 7 runs, CPython 3.11):

    complete_queue(2): 170 states   14.85 ms   ~11,450 states/sec
    complete_queue(3): 362 states   33.64 ms   ~10,760 states/sec

Post-overhaul the same container explores complete_queue(2) in ~5.5 ms
(~31,000 states/sec), a ~2.7x improvement.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro.checker import ExploreStats, explore, explore_parallel
from repro.checker.explorer import initial_states
from repro.kernel.action import compile_action
from repro.kernel.expr import Env, EvalError
from repro.kernel.state import State
from repro.systems.circuit import composed_processes
from repro.systems.queue import complete_queue

from conftest import report


# -- faithful snapshot of the pre-PR hot path --------------------------------
#
# This replicates, warts intact, what the seed commit did per state:
# re-deriving the sorted variable tuple from the universe on every
# ``Universe.variables`` access (including once per *candidate* in the
# frame-check loop), recomputing each branch's free-variable list per
# state, and list-membership edge insertion in the graph.


def _vars(universe):
    # pre-PR Universe.variables: tuple(sorted(...)) recomputed per access
    return tuple(sorted(universe._domains))


def _baseline_enumerate_post(state, universe, branch, relevant):
    env0 = Env(state)
    determined = {}
    for name, expr in branch.bindings.items():
        if name not in universe:
            continue
        try:
            value = expr.eval(env0)
        except EvalError:
            return
        if value not in universe.domain(name):
            return
        determined[name] = value
    for name, expr in branch.binding_checks:
        if name not in determined:
            continue
        try:
            if expr.eval(env0) != determined[name]:
                return
        except EvalError:
            return
    free = [name for name in relevant if name not in determined]
    base = dict(state)
    base.update(determined)

    def rec(index):
        if index == len(free):
            candidate = State._trusted(dict(base))
            env = Env(state, candidate)
            try:
                if all(c.holds(env) for c in branch.constraints):
                    yield candidate
            except EvalError:
                pass
            return
        name = free[index]
        for value in universe.domain(name).values():
            base[name] = value
            yield from rec(index + 1)
        base[name] = state[name]

    yield from rec(0)


def _baseline_successors(action, state, universe):
    compiled = compile_action(action)
    relevant = _vars(universe)
    seen = set()
    for branch in compiled.branches:
        for candidate in _baseline_enumerate_post(state, universe, branch,
                                                  relevant):
            ok = True
            for name in _vars(universe):  # property access per candidate
                if name not in relevant and candidate[name] != state[name]:
                    ok = False
                    break
            if ok and candidate not in seen:
                seen.add(candidate)
                yield candidate


class _BaselineGraph:
    """Pre-PR StateGraph construction: O(degree) list-membership edges."""

    def __init__(self):
        self.states = []
        self.index = {}
        self.succ = []
        self.init_nodes = []

    def add_state(self, state):
        node = self.index.get(state)
        if node is not None:
            return node, False
        node = len(self.states)
        self.index[state] = node
        self.states.append(state)
        self.succ.append([node])
        return node, True

    def add_edge(self, src, dst):
        if dst != src and dst not in self.succ[src]:
            self.succ[src].append(dst)

    def real_edges(self):
        return {(self.states[s], self.states[d])
                for s, outs in enumerate(self.succ)
                for d in outs if d != s}


def _baseline_explore(spec, max_states=200_000):
    graph = _BaselineGraph()
    frontier = []
    for state in initial_states(spec.init, spec.universe):
        node, new = graph.add_state(state)
        if new:
            graph.init_nodes.append(node)
            frontier.append(node)
    while frontier:
        if len(graph.states) > max_states:
            raise RuntimeError("explosion")
        next_frontier = []
        for src in frontier:
            state = graph.states[src]
            for succ_state in _baseline_successors(spec.next_action, state,
                                                   spec.universe):
                dst, new = graph.add_state(succ_state)
                graph.add_edge(src, dst)
                if new:
                    next_frontier.append(dst)
        frontier = next_frontier
    return graph


# -- measurement -------------------------------------------------------------


def _best_of(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _real_edges(graph):
    return {(graph.states[s], graph.states[d])
            for s, outs in enumerate(graph.succ)
            for d in outs if d != s}


def test_explore_queue_matches_baseline_and_is_1_5x_faster():
    spec = complete_queue(2)
    base_graph = _baseline_explore(spec)
    new_graph = explore(spec)

    # the overhaul must not change the explored graph
    assert set(new_graph.states) == set(base_graph.states)
    assert _real_edges(new_graph) == base_graph.real_edges()
    assert new_graph.edge_count == len(base_graph.real_edges())
    assert new_graph.stutter_count == new_graph.state_count

    t_base = _best_of(lambda: _baseline_explore(spec))
    t_new = _best_of(lambda: explore(spec))
    speedup = t_base / t_new
    report("PERF: explore(complete_queue(2)) vs pre-PR baseline", [
        ["states", new_graph.state_count],
        ["real edges", new_graph.edge_count],
        ["pre-PR path", f"{t_base * 1000:.2f} ms"],
        ["compiled-plan path", f"{t_new * 1000:.2f} ms"],
        ["speedup", f"{speedup:.2f}x"],
    ])
    assert speedup >= 1.5, (
        f"expected >= 1.5x speedup over the pre-PR explore path, "
        f"got {speedup:.2f}x ({t_base * 1000:.2f} ms -> {t_new * 1000:.2f} ms)"
    )


def test_explore_queue_n3_scaling():
    spec = complete_queue(3)
    stats = ExploreStats()
    graph = explore(spec, stats=stats)
    t_base = _best_of(lambda: _baseline_explore(spec), reps=3)
    t_new = _best_of(lambda: explore(spec), reps=3)
    report("PERF: explore(complete_queue(3))", [
        ["states", graph.state_count],
        ["real edges", graph.edge_count],
        ["depth", stats.depth],
        ["pre-PR path", f"{t_base * 1000:.2f} ms"],
        ["compiled-plan path", f"{t_new * 1000:.2f} ms"],
        ["states/sec", f"{stats.states_per_sec:,.0f}"],
    ])
    assert graph.state_count == 362
    assert t_base / t_new >= 1.2  # looser bound on the bigger instance


def test_explore_circuit_matches_baseline():
    spec = composed_processes()
    base_graph = _baseline_explore(spec)
    graph = explore(spec)
    assert set(graph.states) == set(base_graph.states)
    assert _real_edges(graph) == base_graph.real_edges()
    t_new = _best_of(lambda: explore(spec))
    report("PERF: explore(circuit composed_processes)", [
        ["states", graph.state_count],
        ["real edges", graph.edge_count],
        ["stutter loops", graph.stutter_count],
        ["compiled-plan path", f"{t_new * 1000:.3f} ms"],
    ])


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover
        return os.cpu_count() or 1


def _assert_identical(serial, parallel):
    assert parallel.states == serial.states        # same nodes, same numbering
    assert parallel.succ == serial.succ            # same edges
    assert parallel.init_nodes == serial.init_nodes
    assert parallel.parent == serial.parent        # same BFS trace tree


def test_explore_parallel_matches_serial_exactly():
    """Graph equality (nodes, edges, init_nodes, numbering, parent tree)
    holds on any machine -- this is the correctness half of the parallel
    acceptance criterion; the wall-clock half is below."""
    spec = complete_queue(4)
    serial = explore(spec)
    for workers in (2, 4):
        _assert_identical(serial, explore_parallel(spec, workers=workers))


def test_explore_parallel_queue_speedup_4_workers():
    """PERF: ``explore_parallel(queue, workers=4)`` vs serial ``explore``.

    The appendix queue system, sized so the successor work dominates the
    coordinator's (serial) merging and IPC.  Requires 4 usable cores --
    on smaller boxes the workers timeshare one core and the measurement
    would only show scheduler overhead, so the speedup assertion is
    meaningless there and the test skips (CI runs it; the graph-equality
    test above runs everywhere).
    """
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"needs >= 4 usable cores for a meaningful "
                    f"4-worker speedup measurement, have {cores}")
    spec = complete_queue(9)  # ~24.5k states, ~1.3s serial on the dev box
    serial_graph = explore(spec)
    stats = ExploreStats()
    parallel_graph = explore_parallel(spec, workers=4, stats=stats)
    _assert_identical(serial_graph, parallel_graph)

    t_serial = _best_of(lambda: explore(spec), reps=3)
    t_parallel = _best_of(lambda: explore_parallel(spec, workers=4), reps=3)
    speedup = t_serial / t_parallel
    rows = [
        ["states", parallel_graph.state_count],
        ["real edges", parallel_graph.edge_count],
        ["serial explore", f"{t_serial * 1000:.1f} ms"],
        ["parallel explore (4 workers)", f"{t_parallel * 1000:.1f} ms"],
        ["speedup", f"{speedup:.2f}x"],
        ["coordinator idle", f"{stats.coordinator_idle_seconds * 1000:.1f} ms"],
    ]
    for worker_id in sorted(stats.worker_stats):
        entry = stats.worker_stats[worker_id]
        rows.append([f"worker {worker_id} sources",
                     f"{entry['sources']:.0f} "
                     f"(busy {entry['busy_seconds'] * 1000:.1f} ms)"])
    report("PERF: explore_parallel(complete_queue(9), workers=4)", rows)
    assert speedup >= 1.5, (
        f"expected >= 1.5x wall-clock speedup at 4 workers, got "
        f"{speedup:.2f}x ({t_serial * 1000:.1f} ms -> "
        f"{t_parallel * 1000:.1f} ms)"
    )


def test_explore_stats_populated():
    stats = ExploreStats()
    graph = explore(complete_queue(2), stats=stats)
    assert stats.states == graph.state_count == 170
    assert stats.edges == graph.edge_count
    assert stats.stutter_edges == graph.state_count
    assert stats.init_states == len(graph.init_nodes)
    assert stats.depth > 0
    assert stats.states_per_sec > 0
    assert stats.phases["explore"] == stats.explore_seconds > 0
    snapshot = stats.as_dict()
    assert snapshot["states"] == 170
    assert "explore" in snapshot["phases"]
