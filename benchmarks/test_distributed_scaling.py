"""PERF/acceptance: distributed exploration scales across worker nodes.

The distributed coordinator (DESIGN.md section 4i) ships the two
per-state hot spots -- successor enumeration and fingerprinting -- to
the worker nodes and keeps only the serial in-order merge for itself,
so adding nodes must buy real throughput: a 4-worker run of the
droppable-messages Paxos instance under a 20k-state budget must reach
**>= 2x** the states/sec of the same run on a single worker node,
while landing on the bit-for-bit identical explosion point and
:class:`~repro.checker.digest.GraphDigest`.

Unlike the compact-vs-full ratio (same process, machine-independent),
this one measures actual parallel hardware: 4 worker processes plus
the coordinator need at least 4 usable cores before the comparison
means anything, so the measurement is core-gated exactly like the POR
and compact benchmarks.  Set ``REPRO_BENCH_STATS_JSON`` to also write
the 4-worker run's machine-readable stats snapshot (CI uploads it as
an artifact).
"""

import os
from time import perf_counter

import pytest

from repro.checker import (
    ExploreStats,
    StateSpaceExplosion,
    explore_compact,
    explore_distributed,
    spawn_local_workers,
)
from repro.systems import bundled_module

from conftest import report

BUDGET = 20_000
REF = "paxos:acceptors=3,ballots=3,droppable"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover
        return os.cpu_count() or 1


def _timed_explosion(fn):
    """Run *fn* to its budget explosion; return (seconds, digest)."""
    t0 = perf_counter()
    with pytest.raises(StateSpaceExplosion) as exc:
        fn()
    elapsed = perf_counter() - t0
    graph = exc.value.graph
    assert graph.state_count == BUDGET
    return elapsed, graph.digest()


def test_distributed_scaling_on_paxos_budget():
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"4 worker nodes cannot run in parallel on {cores} "
                    f"usable core(s); CI runs this on 4+")
    spec = bundled_module(REF).spec("Spec")

    t_serial, serial_digest = _timed_explosion(
        lambda: explore_compact(spec, max_states=BUDGET))

    # heartbeat=None: on a saturated box the health monitor can misread
    # a merely-slow worker as hung, and a rebalance mid-measurement
    # would poison the timing (the digest would still be right)
    with spawn_local_workers(4) as pool:
        t_one, one_digest = _timed_explosion(
            lambda: explore_distributed(spec, pool.urls[:1],
                                        max_states=BUDGET,
                                        heartbeat=None))
        stats = ExploreStats()
        t_four, four_digest = _timed_explosion(
            lambda: explore_distributed(spec, pool.urls[:4],
                                        max_states=BUDGET, stats=stats,
                                        heartbeat=None))

    # identity first: a fast wrong answer is worthless
    assert one_digest == serial_digest
    assert four_digest == serial_digest
    assert stats.node_losses == 0

    # write the artifact before the ratio gate: a failing run's stats
    # are exactly the ones worth inspecting
    stats_json = os.environ.get("REPRO_BENCH_STATS_JSON")
    if stats_json:
        with open(stats_json, "w") as handle:
            handle.write(stats.to_json(indent=2) + "\n")

    ratio = t_one / t_four
    assert ratio >= 2.0, (
        f"4 worker nodes ran {ratio:.2f}x one node "
        f"({BUDGET} states: 1 node {t_one:.3f}s, 4 nodes {t_four:.3f}s); "
        f"the acceptance bar is >= 2x"
    )

    report(f"distributed scaling, {REF}, budget {BUDGET}", [
        ["states", BUDGET],
        ["serial compact", f"{t_serial:.3f} s "
                           f"({BUDGET / t_serial:,.0f} states/s)"],
        ["1 worker node", f"{t_one:.3f} s "
                          f"({BUDGET / t_one:,.0f} states/s)"],
        ["4 worker nodes", f"{t_four:.3f} s "
                           f"({BUDGET / t_four:,.0f} states/s)"],
        ["speedup", f"{ratio:.2f}x"],
        ["graph digest", four_digest[:16] + "..."],
    ])
