"""FIG7-8: the double queue implements the (2N+1)-queue (section A.4).

Regenerates the refinement result ``CDQ ⇒ CQ[dbl]`` with the explicit
mapping ``q ↦ q2 ∘ buffer(z) ∘ q1`` -- safety and liveness -- for
increasing ``N``.
"""

import pytest

from repro.checker import (
    check_safety_refinement,
    check_temporal_implication,
    explore,
    premises_of_spec,
)
from repro.systems.queue import DoubleQueue

from conftest import report


@pytest.mark.parametrize("size", [1, 2])
def test_fig8_safety_refinement(benchmark, size):
    dq = DoubleQueue(size)
    graph = explore(dq.cdq_spec())
    target = dq.icq_dbl()

    result = benchmark(lambda: check_safety_refinement(
        graph, target, dq.mapping))
    assert result.ok
    report(f"FIG8: CDQ ⇒ C(CQ[dbl]), N={size}", [
        ["CDQ states", graph.state_count],
        ["CDQ edges", graph.edge_count],
        ["target capacity", 2 * size + 1],
        ["verdict", "refinement holds"],
    ])


@pytest.mark.parametrize("size", [1, 2])
def test_fig8_liveness_refinement(benchmark, size):
    dq = DoubleQueue(size)
    spec = dq.cdq_spec()
    graph = explore(spec)
    target = dq.icq_dbl()

    result = benchmark(lambda: check_temporal_implication(
        graph, target.liveness_formula(), mapping=dq.mapping,
        target_universe=target.universe, premises=premises_of_spec(spec)))
    assert result.ok
    report(f"FIG8 liveness: WF_<i,o,q>(QM[dbl]) through the mapping, N={size}", [
        ["fair units examined", result.stats["fair_units_examined"]],
        ["verdict", "liveness carries through"],
    ])


def test_fig8_exploration_scaling(benchmark):
    """State growth of the composite system: the series behind Figure 7."""
    rows = [["N", "CDQ states", "CQ[dbl] states"]]
    for size in (1, 2):
        dq = DoubleQueue(size)
        rows.append([size,
                     explore(dq.cdq_spec()).state_count,
                     explore(dq.icq_dbl()).state_count])

    benchmark(lambda: explore(DoubleQueue(1).cdq_spec()))
    report("FIG7/8 scaling", rows)
