"""PERF/acceptance: the compact engine on the k=3 queue chain.

The compact explorer (packed-int states, per-conjunct memoized guard
trees, fingerprint-only retention -- see DESIGN.md section 4g) must be
**>= 5x** the full engine's states/sec on the queue-chain workload while
producing the bit-for-bit identical graph: same state/edge counts and
the same streaming :class:`~repro.checker.digest.GraphDigest`.

The ratio is a property of the algorithms, not the machine (both halves
run on the same interpreter in the same process), but the full-engine
half is slow enough that the measurement is gated on cores like the POR
benchmark.  Set ``REPRO_BENCH_STATS_JSON`` to also write the compact
run's machine-readable stats snapshot (CI uploads it as an artifact).
"""

import os
from time import perf_counter

import pytest

from repro.checker import ExploreStats, digest_of_graph, explore, explore_compact
from repro.systems.queue import QueueChain

from conftest import report


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover
        return os.cpu_count() or 1


def _best_of(fn, rounds: int = 2) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def test_compact_engine_speedup_on_queue_chain():
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"full-engine half of the measurement is too slow on "
                    f"{cores} usable core(s); CI runs it on 4+")
    spec = QueueChain(3, 1).complete_spec()

    full = explore(spec)
    t_full = _best_of(lambda: explore(spec), rounds=1)

    stats = ExploreStats()
    compact = explore_compact(spec, stats=stats)
    t_compact = _best_of(lambda: explore_compact(spec), rounds=2)

    # identity first: a fast wrong answer is worthless
    assert compact.state_count == full.state_count
    assert compact.edge_count == full.edge_count
    assert compact.digest() == digest_of_graph(full)
    assert stats.fingerprint_collisions == 0

    ratio = t_full / t_compact
    assert ratio >= 5.0, (
        f"compact engine ran {ratio:.2f}x the full engine "
        f"({full.state_count} states: full {t_full:.3f}s, compact "
        f"{t_compact:.3f}s); the acceptance bar is >= 5x"
    )

    stats_json = os.environ.get("REPRO_BENCH_STATS_JSON")
    if stats_json:
        with open(stats_json, "w") as handle:
            handle.write(stats.to_json(indent=2) + "\n")

    report("compact engine, queue chain k=3, N=1", [
        ["states", full.state_count],
        ["real edges", full.edge_count],
        ["full engine", f"{t_full:.3f} s "
                        f"({full.state_count / t_full:,.0f} states/s)"],
        ["compact engine", f"{t_compact:.3f} s "
                           f"({compact.state_count / t_compact:,.0f} "
                           f"states/s)"],
        ["speedup", f"{ratio:.2f}x"],
        ["graph digest", compact.digest()[:16] + "..."],
        ["collision bound", f"{stats.collision_probability_bound:.3g}"],
    ])
