"""ABL-OPS: ``⊳`` versus ``⇒`` versus ``−▷`` as the A/G connective.

Section 3 of the paper discusses three candidate forms for
assumption/guarantee specifications and adopts ``⊳`` because it "leads to
the simpler rules for composition".  This ablation makes that concrete:

* with plain implication ``E ⇒ M`` as the connective, the circular safety
  composition of Figure 1 is *unsound* -- a behavior exists satisfying
  both implication-premises but not the conclusion (each side "predicts"
  the other's failure);
* with ``−▷`` (simultaneous violation allowed), the circular rule is
  likewise refuted by a behavior where both outputs break in the same
  step;
* with ``⊳``, the composition holds (and the three connectives are
  totally ordered in strength: ``⊳`` ⊂ ``−▷`` ⊂ ``⇒``).
"""

from repro.core import AsLongAs, Guarantees, brute_force_implication
from repro.systems import circuit
from repro.temporal import TAnd, TImplies

from conftest import report


def _premises(connective):
    m0c = circuit.always_zero("c").formula()
    m0d = circuit.always_zero("d").formula()
    return [connective(m0d, m0c), connective(m0c, m0d)]


def _goal():
    return TAnd(circuit.always_zero("c").formula(),
                circuit.always_zero("d").formula())


def test_implication_connective_unsound(benchmark):
    result = benchmark(lambda: brute_force_implication(
        _premises(TImplies), _goal(), circuit.wire_universe(),
        max_stem=1, max_loop=1))
    assert not result.ok
    report("ABL-OPS: E ⇒ M as the connective", [
        ["verdict", "circular rule UNSOUND"],
        ["counterexample states",
         " -> ".join(f"c={s['c']},d={s['d']}"
                     for s in result.counterexample.trace.states)],
    ])


def test_aslongas_connective_unsound(benchmark):
    result = benchmark(lambda: brute_force_implication(
        _premises(AsLongAs), _goal(), circuit.wire_universe(),
        max_stem=1, max_loop=1))
    assert not result.ok
    # the counterexample must break both wires simultaneously
    trace = result.counterexample.trace
    broke = [s for s in trace.states if s["c"] == 1 and s["d"] == 1]
    report("ABL-OPS: E −▷ M as the connective", [
        ["verdict", "circular rule UNSOUND"],
        ["simultaneous violation", bool(broke)],
    ])


def test_guarantees_connective_sound(benchmark):
    result = benchmark(lambda: brute_force_implication(
        _premises(Guarantees), _goal(), circuit.wire_universe(),
        max_stem=2, max_loop=2))
    assert result.ok
    report("ABL-OPS: E ⊳ M as the connective", [
        ["verdict", "circular rule SOUND"],
        ["behaviors checked", result.stats["behaviors"]],
    ])


def test_strength_ordering(benchmark):
    """⊳ implies −▷ implies ⇒, on every behavior of the universe."""
    from repro.kernel import all_lassos
    from repro.temporal import EvalContext

    universe = circuit.wire_universe()
    m0c = circuit.always_zero("c").formula()
    m0d = circuit.always_zero("d").formula()
    lassos = list(all_lassos(list(universe.states()), 1, 2))

    def check_ordering():
        for la in lassos:
            ctx = EvalContext(la, universe)
            g = ctx.eval(Guarantees(m0d, m0c), 0)
            w = ctx.eval(AsLongAs(m0d, m0c), 0)
            i = (not ctx.eval(m0d, 0)) or ctx.eval(m0c, 0)
            assert (not g) or w
            assert (not w) or i
        return len(lassos)

    count = benchmark.pedantic(check_ordering, rounds=1, iterations=1)
    report("ABL-OPS: strength ordering ⊳ ⊆ −▷ ⊆ ⇒", [
        ["behaviors checked", count],
        ["violations", 0],
    ])
