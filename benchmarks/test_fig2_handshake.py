"""FIG2: the two-phase handshake protocol trace (Figure 2).

Regenerates the figure's table for the values 37, 4, 19 and validates the
trace against the Send/Ack actions; benchmarks trace generation plus
validation at increasing lengths.
"""

import pytest

from repro.systems.handshake import (
    check_protocol_trace,
    protocol_trace,
    render_figure2,
)

from conftest import report


def test_fig2_table(benchmark):
    table = benchmark(lambda: render_figure2("c", (37, 4, 19)))
    print("\n--- FIG2: the two-phase handshake protocol ---")
    print(table)
    lines = table.splitlines()
    assert lines[1].split()[1:] == ["0", "0", "1", "1", "0", "0"]
    assert lines[2].split()[1:] == ["0", "1", "1", "0", "0", "1"]
    assert lines[3].split()[1:] == ["-", "37", "37", "4", "4", "19"]


@pytest.mark.parametrize("length", [10, 100, 1000])
def test_fig2_trace_validation(benchmark, length):
    values = [v % 2 for v in range(length)]

    def generate_and_validate():
        trace = protocol_trace("c", values, initial_val=0)
        problems = check_protocol_trace(trace, "c")
        assert problems == []
        return trace

    trace = benchmark(generate_and_validate)
    report(f"FIG2 scaling: {length} values", [
        ["states in trace", len(trace)],
    ])
