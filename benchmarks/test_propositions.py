"""PROP1-4: empirical validation of the paper's Propositions 1-4 and the
section 4.2 identity, over exhaustive small behavior universes.

The propositions are theorems; these benchmarks check their conclusions
against the exact lasso semantics on every behavior up to a bound --
mismatches would indicate a bug in either the operators or the syntactic
reductions the Composition Theorem engine relies on.
"""


from repro.core import (
    DisjointSpec,
    validate_guarantee_identity,
    validate_proposition1,
    validate_proposition3,
    validate_proposition4,
)
from repro.kernel import BIT, Eq, Not, Or, Universe, Var, all_lassos
from repro.kernel.action import unchanged
from repro.spec import Spec, weak_fairness
from repro.temporal import ActionBox, StatePred, TAnd

from conftest import report

e, m = Var("e"), Var("m")
U = Universe({"e": BIT, "m": BIT})

E = TAnd(StatePred(Eq(e, 0)), ActionBox(Eq(e.prime(), 0), ("e",)))
M = TAnd(StatePred(Eq(m, 0)), ActionBox(Eq(m.prime(), 0), ("m",)))


def small_lassos(max_stem=1, max_loop=2):
    return list(all_lassos(list(U.states()), max_stem, max_loop))


def test_proposition1(benchmark):
    spec = Spec("e0", Eq(e, 0), Eq(e.prime(), 0), ("e",),
                Universe({"e": BIT}),
                [weak_fairness(("e",), Eq(e.prime(), 0))])
    lassos = small_lassos()

    mismatches = benchmark.pedantic(
        lambda: validate_proposition1(spec, lassos), rounds=1, iterations=1)
    assert mismatches == []
    report("PROP1: C(Init ∧ □[N]_v ∧ WF) = Init ∧ □[N]_v", [
        ["behaviors checked", len(lassos)],
        ["mismatches", 0],
    ])


def test_proposition3(benchmark):
    rely = TAnd(
        StatePred(Eq(m, 0)),
        ActionBox(Or(unchanged(("m",)), Not(Eq(e, 0))), ("m",)),
    )
    lassos = small_lassos(max_stem=2, max_loop=1)

    problems = benchmark.pedantic(
        lambda: validate_proposition3(E, M, rely, ("e", "m"), lassos, U),
        rounds=1, iterations=1)
    assert problems == []
    report("PROP3: E+v ∧ R ⇒ M from E ∧ R ⇒ M and R ⇒ E ⊥ M", [
        ["behaviors checked", len(lassos)],
        ["counterexamples to the proposition", 0],
    ])


def test_proposition4(benchmark):
    disjoint = DisjointSpec([("e",), ("m",)])
    lassos = small_lassos()

    problems = benchmark.pedantic(
        lambda: validate_proposition4(
            E, M, StatePred(Eq(e, 0)), StatePred(Eq(m, 0)),
            disjoint, lassos, U),
        rounds=1, iterations=1)
    assert problems == []
    report("PROP4: init disjunction ∧ Disjoint(e, m) ⇒ C(E) ⊥ C(M)", [
        ["behaviors checked", len(lassos)],
        ["counterexamples to the proposition", 0],
    ])


def test_guarantee_identity(benchmark):
    lassos = small_lassos()

    problems = benchmark.pedantic(
        lambda: validate_guarantee_identity(E, M, lassos, U),
        rounds=1, iterations=1)
    assert problems == []
    report("section 4.2: (E ⊳ M) = (E −▷ M) ∧ (E ⊥ M)", [
        ["behaviors checked", len(lassos)],
        ["mismatches", 0],
    ])
