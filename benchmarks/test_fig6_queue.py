"""FIG3-6: the complete N-element queue (Figures 3-6).

Model-checks the complete system ``ICQ`` of Figure 6 for increasing ``N``
and message-domain sizes: state-space statistics, the capacity invariant,
the handshake discipline, and the WF-driven forward-progress property.
"""

import pytest

from repro.checker import (
    check_invariant,
    check_temporal_implication,
    explore,
    premises_of_spec,
)
from repro.kernel import Cmp, FiniteDomain, Len, Var
from repro.systems.handshake import pending, ready
from repro.systems.queue import Queue, complete_queue
from repro.temporal import ActionBox, LeadsTo, StatePred

from conftest import report


@pytest.mark.parametrize("size", [1, 2, 3])
def test_fig6_state_space(benchmark, size):
    spec = complete_queue(size)
    graph = benchmark(lambda: explore(spec))
    report(f"FIG6: complete queue, N={size}, |Msg|=2", [
        ["reachable states", graph.state_count],
        ["edges", graph.edge_count],
    ])
    assert graph.state_count > 0


@pytest.mark.parametrize("msg_size", [2, 3])
def test_fig6_message_domain_scaling(benchmark, msg_size):
    msg = FiniteDomain(list(range(msg_size)))
    spec = complete_queue(1, msg)
    graph = benchmark(lambda: explore(spec))
    report(f"FIG6: complete queue, N=1, |Msg|={msg_size}", [
        ["reachable states", graph.state_count],
    ])


@pytest.mark.parametrize("size", [1, 2])
def test_fig6_safety_properties(benchmark, size):
    spec = complete_queue(size)
    graph = explore(spec)

    def run_checks():
        capacity = check_invariant(graph, Queue(size).capacity_invariant())
        discipline = check_temporal_implication(
            graph, ActionBox(ready("o"), ("o.val",)), premises=[])
        return capacity, discipline

    capacity, discipline = benchmark(run_checks)
    assert capacity.ok and discipline.ok
    report(f"FIG6 safety (N={size})", [
        ["|q| <= N", "OK"],
        ["o.val changes only when o is ready", "OK"],
        ["states checked", graph.state_count],
    ])


@pytest.mark.parametrize("size", [1, 2])
def test_fig6_liveness(benchmark, size):
    spec = complete_queue(size)
    graph = explore(spec)
    progress = LeadsTo(
        StatePred(Cmp(">", Len(Var("q")), 0) & ready("o")),
        StatePred(pending("o")))

    result = benchmark(lambda: check_temporal_implication(
        graph, progress, premises=premises_of_spec(spec)))
    assert result.ok
    report(f"FIG6 liveness (N={size})", [
        ["q nonempty ∧ o ready ~> value sent", "OK"],
        ["fair units examined", result.stats["fair_units_examined"]],
    ])
