"""Extension: the Composition Theorem on k-queue chains.

The paper composes two queues by hand (Figure 9); the engine iterates the
construction.  This benchmark reports how the proof cost scales with the
chain length k -- the reachable product grows, but remains model-checkable,
whereas the direct semantic route is already hopeless at k = 2
(see test_ablation_direct_vs_theorem).
"""

import os
from time import perf_counter

import pytest

from repro.checker import (
    ExploreStats,
    ReductionConfig,
    check_deadlock_free,
    explore,
)
from repro.core import behavior_count
from repro.systems.queue import QueueChain

from conftest import report


@pytest.mark.parametrize("count", [2, 3])
def test_chain_composition(benchmark, count):
    chain = QueueChain(count, 1)

    cert = benchmark.pedantic(
        lambda: chain.composition_theorem().verify(), rounds=1, iterations=1)
    assert cert.ok
    direct = behavior_count(chain.universe, 2, 2)
    report(f"chain composition, k={count}, N=1", [
        ["capacity proved", chain.capacity],
        ["states explored (theorem)", cert.total_states_explored()],
        ["lassos in open universe (direct, stem/loop<=2)", f"{direct:.2e}"],
    ])


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover
        return os.cpu_count() or 1


def test_chain_partial_order_reduction_halves_the_state_space():
    """PERF/acceptance: Disjoint-derived POR on the k=3 chain explores
    >= 2x fewer states than the full graph with the identical deadlock
    verdict.  The ratio itself is deterministic (the reduced graph is
    machine-independent); the test is gated on cores only because the
    full k=3 exploration is the expensive half of the measurement and
    is not worth timesharing on tiny boxes.
    """
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"full-graph half of the measurement is too slow on "
                    f"{cores} usable core(s); CI runs it on 4+")
    spec = QueueChain(3, 1).complete_spec()
    t0 = perf_counter()
    full = explore(spec)
    t_full = perf_counter() - t0
    stats = ExploreStats()
    t0 = perf_counter()
    reduced = explore(spec, stats=stats, reduction=ReductionConfig(()))
    t_reduced = perf_counter() - t0

    assert stats.por_enabled is True
    ratio = full.state_count / reduced.state_count
    assert ratio >= 2.0, (
        f"POR explored {reduced.state_count} of {full.state_count} states "
        f"({ratio:.2f}x); the acceptance bar is >= 2x"
    )
    assert (check_deadlock_free(reduced).ok
            == check_deadlock_free(full).ok)
    counters = stats.por_counters
    expanded = (counters["ample_states"] + counters["full_states"]
                + counters["proviso_states"])
    report("chain POR, k=3, N=1 (deadlock-only observation)", [
        ["full graph states", full.state_count],
        ["reduced graph states", reduced.state_count],
        ["state reduction", f"{ratio:.2f}x"],
        ["ample expansions", f"{counters['ample_states']}/{expanded}"],
        ["proviso fallbacks", counters["proviso_states"]],
        ["successors pruned (est.)", counters["pruned_successors"]],
        ["full explore", f"{t_full:.2f} s"],
        ["reduced explore", f"{t_reduced:.2f} s"],
    ])
