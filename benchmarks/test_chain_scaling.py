"""Extension: the Composition Theorem on k-queue chains.

The paper composes two queues by hand (Figure 9); the engine iterates the
construction.  This benchmark reports how the proof cost scales with the
chain length k -- the reachable product grows, but remains model-checkable,
whereas the direct semantic route is already hopeless at k = 2
(see test_ablation_direct_vs_theorem).
"""

import pytest

from repro.core import behavior_count
from repro.systems.queue import QueueChain

from conftest import report


@pytest.mark.parametrize("count", [2, 3])
def test_chain_composition(benchmark, count):
    chain = QueueChain(count, 1)

    cert = benchmark.pedantic(
        lambda: chain.composition_theorem().verify(), rounds=1, iterations=1)
    assert cert.ok
    direct = behavior_count(chain.universe, 2, 2)
    report(f"chain composition, k={count}, N=1", [
        ["capacity proved", chain.capacity],
        ["states explored (theorem)", cert.total_states_explored()],
        ["lassos in open universe (direct, stem/loop<=2)", f"{direct:.2e}"],
    ])
