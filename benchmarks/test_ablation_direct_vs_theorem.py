"""ABL-DIRECT: the Composition Theorem versus the direct semantic check.

The quantitative content of the paper's closing claim -- the theorem
"makes reasoning about open systems almost as easy as reasoning about
complete ones" -- is that checking ``⋀(E_j ⊳ M_j) ⇒ (E ⊳ M)`` *directly*
means quantifying over every behavior of the open universe, which explodes
combinatorially, while the theorem reduces the question to reachable-state
analysis of complete systems.

This benchmark measures both routes on Figure 1 (where the direct route is
still feasible) and reports the closed-form behavior counts for the queue
instance (where it is not: at N=1 the double-queue universe has 4608
states, i.e. ~10^22 lassos at even stem 2 / loop 2 -- versus a few
thousand reachable product states for the theorem route).
"""

import pytest

from repro.core import CompositionTheorem, behavior_count, brute_force_implication
from repro.systems import circuit
from repro.systems.queue import DoubleQueue

from conftest import report


def test_direct_route_fig1(benchmark):
    ag_c, ag_d = circuit.safety_agspecs()
    goal = circuit.safety_goal()
    universe = circuit.wire_universe()

    result = benchmark(lambda: brute_force_implication(
        [ag_c.formula(), ag_d.formula()], goal.formula(), universe,
        max_stem=2, max_loop=2))
    assert result.ok
    report("ABL-DIRECT: Figure 1, direct semantic route", [
        ["behaviors enumerated", result.stats["behaviors"]],
    ])


def test_theorem_route_fig1(benchmark):
    ag_c, ag_d = circuit.safety_agspecs()
    goal = circuit.safety_goal()

    cert = benchmark(lambda: CompositionTheorem([ag_c, ag_d], goal).verify())
    assert cert.ok
    report("ABL-DIRECT: Figure 1, theorem route", [
        ["states explored", cert.total_states_explored()],
    ])


@pytest.mark.parametrize("stem,loop", [(1, 1), (2, 2), (3, 3)])
def test_direct_route_growth(benchmark, stem, loop):
    """The direct route's cost grows as |states|^(stem+loop) -- enumerate
    the smallest bound, count the rest in closed form."""
    universe = circuit.wire_universe()
    count = behavior_count(universe, stem, loop)
    if stem == 1:
        ag_c, ag_d = circuit.safety_agspecs()
        result = benchmark(lambda: brute_force_implication(
            [ag_c.formula(), ag_d.formula()],
            circuit.safety_goal().formula(), universe,
            max_stem=stem, max_loop=loop))
        assert result.ok
    else:
        benchmark(lambda: behavior_count(universe, stem, loop))
    report(f"ABL-DIRECT growth: stem<={stem}, loop<={loop}", [
        ["lassos in the universe", count],
    ])


def test_queue_instance_is_theorem_only(benchmark):
    """At queue scale the direct route is out of reach; the theorem route
    completes in seconds.  Reports the crossover."""
    dq = DoubleQueue(1)
    universe_states = dq.universe.state_count()
    direct_lassos = behavior_count(dq.universe, 2, 2)

    cert = benchmark.pedantic(
        lambda: dq.composition_theorem().verify(), rounds=1, iterations=1)
    assert cert.ok
    report("ABL-DIRECT: double queue N=1", [
        ["route", "cost"],
        ["direct: universe states", universe_states],
        ["direct: lassos (stem<=2, loop<=2)", f"{direct_lassos:.3e}"
         if direct_lassos > 10**9 else direct_lassos],
        ["theorem: states explored", cert.total_states_explored()],
        ["winner", "Composition Theorem, by ~"
         f"{direct_lassos // max(cert.total_states_explored(), 1):.0e}x"],
    ])
