"""FIG1-S / FIG1-L: the introduction's two motivating examples (Figure 1).

Regenerates:

* FIG1-S -- the circular *safety* composition succeeds, both through the
  Composition Theorem and by brute force over the full behavior universe;
* FIG1-L -- the circular *liveness* composition fails, with the paper's
  exact counterexample (both processes leave c and d unchanged).
"""

from repro.core import CompositionTheorem, brute_force_implication
from repro.systems import circuit

from conftest import report


def test_fig1_safety_theorem(benchmark):
    ag_c, ag_d = circuit.safety_agspecs()
    goal = circuit.safety_goal()

    cert = benchmark(lambda: CompositionTheorem([ag_c, ag_d], goal).verify())
    assert cert.ok
    report("FIG1-S: (M0_d ⊳ M0_c) ∧ (M0_c ⊳ M0_d) ⇒ M0_c ∧ M0_d", [
        ["obligation", "verdict", "states"],
        *[[ob.oid, "OK" if ob.ok else "FAIL",
           ob.result.stats.get("states", "-") if ob.result else "-"]
          for ob in cert.obligations],
    ])


def test_fig1_safety_brute_force(benchmark):
    ag_c, ag_d = circuit.safety_agspecs()
    goal = circuit.safety_goal()
    universe = circuit.wire_universe()

    result = benchmark(lambda: brute_force_implication(
        [ag_c.formula(), ag_d.formula()], goal.formula(), universe,
        max_stem=2, max_loop=2))
    assert result.ok
    report("FIG1-S cross-check (semantic, all behaviors)", [
        ["behaviors examined", result.stats["behaviors"]],
        ["verdict", "valid up to stem 2 / loop 2"],
    ])


def test_fig1_liveness_fails(benchmark):
    premise1, premise2 = circuit.liveness_premises()
    goal = circuit.liveness_goal_formula()
    universe = circuit.wire_universe()

    result = benchmark(lambda: brute_force_implication(
        [premise1, premise2], goal, universe, max_stem=1, max_loop=1))
    assert not result.ok
    trace = result.counterexample.trace
    assert all(s["c"] == 0 and s["d"] == 0 for s in trace.states)
    report("FIG1-L: (M1_d ⊳ M1_c) ∧ (M1_c ⊳ M1_d) ⇏ M1_c ∧ M1_d", [
        ["counterexample", "the all-stutter behavior (c = d = 0 forever)"],
        ["behaviors tried before finding it", result.stats["behaviors"]],
    ])


def test_fig1_processes_implement_safety_specs(benchmark):
    """The paper's Pi_c / Pi_d really implement their A/G specifications."""
    ag_c, _ = circuit.safety_agspecs()
    universe = circuit.wire_universe()

    result = benchmark(lambda: brute_force_implication(
        [circuit.pi_c().formula()], ag_c.formula(), universe,
        max_stem=2, max_loop=2))
    assert result.ok
