"""PERF/acceptance: engine throughput on the distributed-protocol corpus.

The corpus instances the ISSUE prescribes -- ``Paxos(3,3,1)`` (three
acceptors, three ballots) and ``Mutex(3, maxClock=4)`` -- both exceed
10^4 reachable states, far past the queue-chain family, so they are the
standing workload every engine scales against.  Exploration is bounded
at a fixed state budget and each engine is timed to the budget (the
instances run to hundreds of thousands of states; rate, not completion,
is the measurement), giving states/sec for

* the full serial engine (the reference semantics),
* partial-order reduction (``--por``; same budget of *reduced* states),
* the compact fingerprint-only engine (``--compact``), serial and at
  ``workers=min(cores, 4)``.

Unlike the queue chain -- whose heavyweight states make compact ~5x
faster in a straight serial race -- the corpus states are dozens of
small booleans, so compact's serial edge is modest (~1.2-1.4x) and the
acceptance bar leans on what the compact engine uniquely offers here:
fingerprint-only retention scales across workers where the full graph
cannot.  Parallel compact must be **>= 3x** the serial full engine on
both protocols, which is why the measurement is core-gated like the
other perf benchmarks.  Set ``REPRO_BENCH_STATS_JSON`` to write the
compact run's stats snapshot (CI uploads it as an artifact).  Rows are
recorded in EXPERIMENTS.md.
"""

import os
from time import perf_counter

import pytest

from repro.checker import (
    ExploreStats,
    ReductionConfig,
    StateSpaceExplosion,
    explore,
    explore_compact,
)
from repro.systems.mutex import LamportMutex
from repro.systems.paxos import Paxos

from conftest import report

BUDGET = 20_000  # states explored per timed run


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover
        return os.cpu_count() or 1


def _timed_to_budget(run) -> float:
    """Wall time for *run* to intern BUDGET states (it must overflow)."""
    start = perf_counter()
    with pytest.raises(StateSpaceExplosion):
        run()
    return perf_counter() - start


CORPUS = [
    pytest.param("Paxos(3,3,1)",
                 lambda: Paxos(3, 3, 1).complete_spec(), id="paxos-3-3-1"),
    pytest.param("Mutex(3, maxClock=4)",
                 lambda: LamportMutex(3, 4).complete_spec(),
                 id="mutex-3-4"),
]


@pytest.mark.parametrize("label, make_spec", CORPUS)
def test_corpus_engine_scaling(label, make_spec):
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"parallel-compact half of the measurement needs 4+ "
                    f"usable cores, found {cores}; CI runs it on 4+")
    workers = min(cores, 4)
    spec = make_spec()

    t_full = _timed_to_budget(
        lambda: explore(spec, max_states=BUDGET))
    t_por = _timed_to_budget(
        lambda: explore(spec, max_states=BUDGET,
                        reduction=ReductionConfig(())))
    t_compact1 = _timed_to_budget(
        lambda: explore_compact(spec, max_states=BUDGET))
    stats = ExploreStats()
    t_compact = _timed_to_budget(
        lambda: explore_compact(spec, max_states=BUDGET, workers=workers,
                                stats=stats))

    ratio = t_full / t_compact
    assert ratio >= 3.0, (
        f"{label}: compact engine ({workers} workers) ran {ratio:.2f}x "
        f"the serial full engine (full {t_full:.3f}s, compact "
        f"{t_compact:.3f}s to {BUDGET} states); the acceptance bar is "
        f">= 3x"
    )

    stats_json = os.environ.get("REPRO_BENCH_STATS_JSON")
    if stats_json:
        suffix = label.split("(")[0].lower()
        path = stats_json.replace(".json", f"-{suffix}.json") \
            if stats_json.endswith(".json") else f"{stats_json}-{suffix}"
        with open(path, "w") as handle:
            handle.write(stats.to_json(indent=2) + "\n")

    report(f"corpus scaling, {label}, budget={BUDGET} states", [
        ["full engine", f"{t_full:.3f} s "
                        f"({BUDGET / t_full:,.0f} states/s)"],
        ["por", f"{t_por:.3f} s ({BUDGET / t_por:,.0f} states/s)"],
        ["compact, serial", f"{t_compact1:.3f} s "
                            f"({BUDGET / t_compact1:,.0f} states/s)"],
        [f"compact, {workers} workers",
         f"{t_compact:.3f} s ({BUDGET / t_compact:,.0f} states/s)"],
        ["compact speedup", f"{ratio:.2f}x"],
        ["collision bound", f"{stats.collision_probability_bound:.3g}"],
    ])
