"""PERF/acceptance: bounded symbolic checking on a domain-blown config.

Eight counters over 0..7 give 8^8 = 16.7M reachable states: the
explicit BFS exceeds a 100k-state budget (in seconds) without ever
answering, while the bug -- counter ``a`` reaching 7 -- sits only 7
steps from the initial state.  The symbolic engine's cost grows with
the unrolling depth, not the state count, so it must return a
*replayable* violation at depth 8 within seconds.  This is the
engine-selection story of README "Choosing an engine" measured: deep
state spaces with shallow bugs belong to BMC.

The acceptance bar is deliberately coarse (symbolic answers inside 30s
wall; the ratio is reported, not asserted) because the CDCL half is
pure Python and CI machines vary; the *shape* -- explicit cannot
answer at all under the budget -- is the property being pinned.  Set
``REPRO_BENCH_STATS_JSON`` to write the solve-stats snapshot (CI
uploads it as an artifact); see ``BENCH_symbolic.json`` for recorded
reference numbers.
"""

import os
from time import perf_counter

import pytest

from repro.checker import explore
from repro.checker.explorer import initial_states
from repro.checker.graph import StateSpaceExplosion
from repro.engine import VIOLATION, SolveStats, SymbolicEngine
from repro.kernel.action import compile_action
from repro.kernel.expr import And, Arith, Const, Eq, Not, Or, Var
from repro.kernel.state import Universe
from repro.kernel.values import FiniteDomain
from repro.spec import Spec

from conftest import report

EXPLICIT_BUDGET = 100_000
DEPTH = 8


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover
        return os.cpu_count() or 1


def blown_spec() -> Spec:
    """Eight independent mod-8 counters: 16.7M states, bug at level 7."""
    names = tuple("abcdefgh")
    universe = Universe({name: FiniteDomain(range(8)) for name in names})

    def bump(name):
        conjuncts = [Eq(Var(name, primed=True),
                        Arith("%", Arith("+", Var(name), 1), 8))]
        conjuncts += [Eq(Var(other, primed=True), Var(other))
                      for other in names if other != name]
        return And(*conjuncts)

    step = Or(*[bump(name) for name in names])
    init = And(*[Eq(Var(name), Const(0)) for name in names])
    return Spec("wide8", init, step, names, universe)


def test_symbolic_answers_where_explicit_blows_the_budget():
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"the explicit half explores {EXPLICIT_BUDGET} states "
                    f"before giving up; too slow on {cores} usable core(s)")
    spec = blown_spec()
    invariant = Not(Eq(Var("a"), Const(7)))

    t0 = perf_counter()
    with pytest.raises(StateSpaceExplosion):
        explore(spec, max_states=EXPLICIT_BUDGET)
    t_explicit = perf_counter() - t0

    stats = SolveStats()
    t0 = perf_counter()
    result = SymbolicEngine(depth=DEPTH).check_invariant(
        spec, invariant, stats=stats)
    t_symbolic = perf_counter() - t0

    # the answer first: a real, minimal, replayable counterexample
    assert result.verdict == VIOLATION
    states = list(result.counterexample.states())
    assert len(states) == 8  # level-7 bug => 8-state minimal trace
    assert states[0] in set(initial_states(spec.init, spec.universe))
    plan = compile_action(spec.next_action).plan(spec.universe)
    for pre, post in zip(states, states[1:]):
        assert post in set(plan.successors(pre))
    assert states[-1]["a"] == 7

    assert t_symbolic < 30.0, (
        f"symbolic took {t_symbolic:.1f}s on the depth-{DEPTH} unrolling; "
        f"the acceptance bar is an answer within 30s")

    stats_json = os.environ.get("REPRO_BENCH_STATS_JSON")
    if stats_json:
        with open(stats_json, "w") as handle:
            handle.write(stats.to_json(indent=2) + "\n")

    report("symbolic vs explicit, 8 counters over 0..7 (16.7M states)", [
        ["reachable states", "16,777,216 (8^8)"],
        ["explicit BFS", f"blew the {EXPLICIT_BUDGET:,}-state budget "
                         f"after {t_explicit:.1f} s (no answer)"],
        ["symbolic BMC", f"violation at depth {result.depth} in "
                         f"{t_symbolic:.2f} s"],
        ["cnf", f"{stats.variables:,} vars, {stats.clauses:,} clauses"],
        ["solver", f"{stats.conflicts:,} conflicts, "
                   f"{stats.propagations:,} propagations"],
        ["trace", f"{len(states)} states (minimal; replayed on the "
                  f"concrete spec)"],
    ])
