#!/usr/bin/env python3
"""Load test for the multi-tenant checking service, CI-runnable.

Boots ``python -m repro serve --procs P`` as a real subprocess on an
ephemeral port, then drives ``--clients`` concurrent submissions split
across ``--tenants`` tenants (every submission a distinct check, so
nothing coalesces or caches away) and reports:

* the end-to-end latency distribution (p50/p95/p99/mean/max, measured
  submit-call to terminal-state);
* per-tenant batch completion times and the **fairness ratio**
  (slowest tenant / fastest tenant) -- deficit-round-robin dispatch
  must keep it within ``--fairness-factor`` (default 2.0);
* **zero lost, zero duplicated jobs**, proven two ways: every job id
  reaches ``done`` over HTTP, and the journal's fold shows exactly one
  ``submitted`` and one ``done`` per id;
* ``/metrics`` reconciliation: admitted == completed + failed +
  cancelled once the queue is drained.

The JSON report lands at ``--out`` (the shape committed as
``benchmarks/BENCH_service.json``).  Prints ``PASS`` and exits 0, or
dies with the first violated assertion.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.service import ServiceClient  # noqa: E402
from repro.service.journal import JobJournal  # noqa: E402

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
"""


def wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.05)


def spawn_server(state_dir, procs, pool_size, queue_limit):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", state_dir, "--procs", str(procs),
         "--pool-size", str(pool_size),
         "--queue-limit", str(queue_limit)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def discover_url(state_dir):
    path = os.path.join(state_dir, "server.json")
    wait_until(lambda: os.path.exists(path), message="server.json")
    with open(path) as handle:
        return json.load(handle)["url"]


def answering(url):
    try:
        return ServiceClient(url, timeout=5).health()["status"] == "ok"
    except OSError:
        return False


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def metric_total(text, name):
    total = 0.0
    pattern = re.compile(rf"^{re.escape(name)}(?:\{{[^}}]*\}})? (\S+)$")
    for line in text.splitlines():
        match = pattern.match(line)
        if match:
            total += float(match.group(1))
    return total


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=1000,
                        help="total submissions (default 1000)")
    parser.add_argument("--tenants", type=int, default=2,
                        help="tenants splitting the submissions (default 2)")
    parser.add_argument("--threads", type=int, default=100,
                        help="client threads driving them (default 100)")
    parser.add_argument("--procs", type=int, default=2,
                        help="server processes (default 2)")
    parser.add_argument("--pool-size", type=int, default=4,
                        help="per-process worker pool (default 4)")
    parser.add_argument("--fairness-factor", type=float, default=2.0,
                        help="max allowed slowest/fastest tenant batch "
                             "ratio (default 2.0)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="JSON report path (CI uploads it)")
    parser.add_argument("--state-dir", default=None,
                        help="service state dir (default: a tempdir)")
    args = parser.parse_args()

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-load-")
    server = spawn_server(state_dir, args.procs, args.pool_size,
                          queue_limit=args.clients + args.threads)
    tenants = [f"tenant-{n}" for n in range(args.tenants)]
    lock = threading.Lock()
    latencies = []
    dispositions = {}
    tenant_done_at = {name: 0.0 for name in tenants}
    retry_sleeps = [0]
    job_ids = []
    failures = []

    def drive(serial):
        tenant = tenants[serial % len(tenants)]

        def counted_sleep(delay):
            with lock:
                retry_sleeps[0] += 1
            time.sleep(delay)

        client = ServiceClient(url, tenant=tenant, timeout=120,
                               retries=8, sleep=counted_sleep)
        begin = time.perf_counter()
        try:
            # a distinct max_states per submission: every job is real,
            # none coalesce onto a sibling or hit the cache
            submitted = client.submit(COUNTER_TLA, invariants=["Small"],
                                      max_states=10_000 + serial)
            job_id = submitted["job"]["id"]
            final = client.wait(job_id, timeout=300, poll=0.05)
            elapsed = time.perf_counter() - begin
            assert final["state"] == "done", (job_id, final["state"])
            assert final["result"]["verdict"] == "ok", job_id
            with lock:
                latencies.append(elapsed)
                disposition = submitted["disposition"]
                dispositions[disposition] = \
                    dispositions.get(disposition, 0) + 1
                tenant_done_at[tenant] = max(tenant_done_at[tenant],
                                             time.perf_counter())
                job_ids.append(job_id)
        except BaseException as exc:  # noqa: BLE001 - reported, re-raised
            with lock:
                failures.append((serial, repr(exc)))
            raise

    try:
        url = discover_url(state_dir)
        wait_until(lambda: answering(url), message="a server process")
        print(f"server up at {url} ({args.procs} procs, pool "
              f"{args.pool_size}); driving {args.clients} submissions "
              f"from {args.tenants} tenants over {args.threads} threads")

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.threads) as pool:
            list(pool.map(drive, range(args.clients)))
        wall = time.perf_counter() - start
        assert not failures, failures[:5]

        batch_walls = {name: done - start
                       for name, done in tenant_done_at.items()}
        fairness = (max(batch_walls.values())
                    / max(min(batch_walls.values()), 1e-9))

        metrics_text = ServiceClient(url, timeout=30).metrics()
        admitted = metric_total(metrics_text, "repro_jobs_admitted_total")
        completed = metric_total(metrics_text,
                                 "repro_jobs_completed_total")
        failed = metric_total(metrics_text, "repro_jobs_failed_total")
        cancelled = metric_total(metrics_text,
                                 "repro_jobs_cancelled_total")

        server.send_signal(signal.SIGTERM)
        server.wait(timeout=60)
        assert server.returncode == 0, server.returncode
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)

    # -- assertions ----------------------------------------------------------

    assert len(job_ids) == args.clients, \
        f"lost in flight: {args.clients - len(job_ids)}"
    assert len(set(job_ids)) == args.clients, "duplicate job ids"

    folded = JobJournal(os.path.join(state_dir, "journal")).replay()
    lost = [j for j in job_ids if folded.get(j, {}).get("state") != "done"]
    duplicated = [j for j in job_ids
                  if folded.get(j, {}).get("counts", {}).get("done") != 1
                  or folded[j]["counts"].get("submitted") != 1]
    assert not lost, f"{len(lost)} jobs not done in the journal"
    assert not duplicated, f"{len(duplicated)} jobs ran more than once"

    assert admitted == float(args.clients), \
        f"admitted {admitted} != {args.clients}"
    assert admitted == completed + failed + cancelled, \
        (admitted, completed, failed, cancelled)

    assert fairness <= args.fairness_factor, \
        (f"fairness ratio {fairness:.2f} exceeds "
         f"{args.fairness_factor} ({batch_walls})")

    latencies.sort()
    report = {
        "clients": args.clients,
        "tenants": args.tenants,
        "threads": args.threads,
        "procs": args.procs,
        "pool_size": args.pool_size,
        "wall_s": round(wall, 3),
        "throughput_jobs_s": round(args.clients / wall, 1),
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 4),
            "p95": round(percentile(latencies, 0.95), 4),
            "p99": round(percentile(latencies, 0.99), 4),
            "mean": round(sum(latencies) / len(latencies), 4),
            "max": round(latencies[-1], 4),
        },
        "fairness_ratio": round(fairness, 3),
        "per_tenant_batch_wall_s": {name: round(value, 3)
                                    for name, value
                                    in sorted(batch_walls.items())},
        "dispositions": dispositions,
        "throttled_retries": retry_sleeps[0],
        "lost": 0,
        "duplicated": 0,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lat = report["latency_s"]
    print(f"{args.clients} jobs in {wall:.1f}s "
          f"({report['throughput_jobs_s']} jobs/s); latency p50 "
          f"{lat['p50']*1000:.0f}ms p95 {lat['p95']*1000:.0f}ms "
          f"p99 {lat['p99']*1000:.0f}ms; fairness ratio "
          f"{fairness:.2f} (<= {args.fairness_factor}); "
          f"0 lost, 0 duplicated; report -> {args.out}")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
