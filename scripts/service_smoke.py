#!/usr/bin/env python3
"""End-to-end smoke test for the checking service, CI-runnable.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, then drives the full client surface:

1. ``/healthz`` answers;
2. submit a check, stream its NDJSON progress events (tee'd to
   ``--events-out`` for artifact upload), verdict ``ok``;
3. byte-identical resubmission is served from the content-addressed
   cache -- ``cache_hit: true``, zero new exploration;
4. a slow job is cancelled mid-exploration at a BFS level boundary;
5. SIGTERM shuts the server down cleanly (exit code 0).

Prints ``PASS`` and exits 0, or dies with an AssertionError/trace.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.service import ServiceClient  # noqa: E402

COUNTER_TLA = """
MODULE Counter
CONSTANT N = 3
VARIABLE x \\in 0..2
Init == x = 0
Next == x' = (x + 1) % N
Spec == Init /\\ [][Next]_<<x>> /\\ WF_<<x>>(Next)
Small == x < 3
"""

CHAIN_TLA = """
MODULE Chain
CONSTANT N = 40
VARIABLE x \\in 0..40
Init == x = 0
Next == x' = IF x < N THEN x + 1 ELSE x
Spec == Init /\\ [][Next]_<<x>>
Bound == x <= 40
"""


def wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.05)


def spawn_server(state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", state_dir, "--pool-size", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def discover_url(state_dir):
    path = os.path.join(state_dir, "server.json")
    wait_until(lambda: os.path.exists(path), message="server.json")
    with open(path) as handle:
        return json.load(handle)["url"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events-out", default="service-events.ndjson",
                        help="tee every streamed progress event here "
                             "(NDJSON; CI uploads it as an artifact)")
    parser.add_argument("--state-dir", default=None,
                        help="service state directory (default: a tempdir)")
    args = parser.parse_args()

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-svc-")
    server = spawn_server(state_dir)
    event_log = open(args.events_out, "w")

    def tee_events(client, job_id):
        events = []
        for event in client.events(job_id, timeout=120):
            event_log.write(json.dumps(event, separators=(",", ":")) + "\n")
            events.append(event)
        event_log.flush()
        return events

    try:
        client = ServiceClient(discover_url(state_dir), timeout=120)

        health = client.health()
        assert health["status"] == "ok", health
        print(f"[1/5] healthz ok (pool {health['pool_size']}, "
              f"queue limit {health['queue_limit']})")

        submitted = client.submit(COUNTER_TLA, invariants=["Small"])
        assert submitted["disposition"] == "created", submitted
        job_id = submitted["job"]["id"]
        events = tee_events(client, job_id)
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "done" and "level" in kinds, kinds
        record = client.job(job_id)
        assert record["result"]["verdict"] == "ok", record
        print(f"[2/5] submit+watch ok ({len(events)} events, "
              f"{record['result']['states']} states)")

        again = client.submit(COUNTER_TLA, invariants=["Small"])
        assert again["disposition"] == "cached", again
        assert again["job"]["cache_hit"] is True, again
        cached_events = tee_events(client, again["job"]["id"])
        assert [e["event"] for e in cached_events] == ["done"], cached_events
        assert again["job"]["result"] == record["result"]
        print("[3/5] byte-identical resubmit served from cache "
              "(cache_hit=true, zero new exploration)")

        slow = client.submit(CHAIN_TLA, invariants=["Bound"],
                             level_delay=0.1)
        slow_id = slow["job"]["id"]
        wait_until(lambda: client.job(slow_id)["state"] == "running",
                   message="slow job to start")
        outcome = client.cancel(slow_id)
        assert outcome["accepted"], outcome
        final = client.wait(slow_id, timeout=60)
        assert final["state"] == "cancelled", final
        tee_events(client, slow_id)
        print("[4/5] mid-exploration cancel landed at a level boundary")

        server.send_signal(signal.SIGTERM)
        server.wait(timeout=30)
        assert server.returncode == 0, server.returncode
        print("[5/5] SIGTERM drained the server cleanly (exit 0)")
    finally:
        event_log.close()
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)

    print(f"PASS (events tee'd to {args.events_out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
